//! Device-global atomic operations.
//!
//! The Hartree–Fock kernel performs six FP64 `Atomic.fetch_add` updates per
//! integral quartet into the Fock matrix (paper Listing 5), and the paper's
//! Table 4 shows that atomic throughput is the deciding factor between the
//! portable, CUDA, and HIP implementations. The simulator executes those
//! atomics for real (so results are exact regardless of scheduling) using
//! compare-and-swap loops over the raw buffer storage, the same technique
//! pre-Pascal CUDA used to emulate FP64 `atomicAdd`.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Atomically adds `value` to the `f64` at `ptr`, returning the previous value.
///
/// # Safety
/// `ptr` must be valid for reads and writes, 8-byte aligned, and all
/// *concurrent* accesses to it must go through atomic operations (plain reads
/// or writes racing with this call are undefined behaviour).
pub unsafe fn fetch_add_f64(ptr: *mut f64, value: f64) -> f64 {
    let atomic = &*(ptr as *const AtomicU64);
    let mut current = atomic.load(Ordering::Relaxed);
    loop {
        let current_f = f64::from_bits(current);
        let new = f64::to_bits(current_f + value);
        match atomic.compare_exchange_weak(current, new, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return current_f,
            Err(actual) => current = actual,
        }
    }
}

/// Atomically adds `value` to the `f32` at `ptr`, returning the previous value.
///
/// # Safety
/// Same contract as [`fetch_add_f64`], with 4-byte alignment.
pub unsafe fn fetch_add_f32(ptr: *mut f32, value: f32) -> f32 {
    let atomic = &*(ptr as *const AtomicU32);
    let mut current = atomic.load(Ordering::Relaxed);
    loop {
        let current_f = f32::from_bits(current);
        let new = f32::to_bits(current_f + value);
        match atomic.compare_exchange_weak(current, new, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => return current_f,
            Err(actual) => current = actual,
        }
    }
}

/// A standalone atomic accumulator cell used by host-side reductions
/// (e.g. summing per-block partial results without a second kernel).
#[derive(Debug, Default)]
pub struct AtomicCell {
    bits: AtomicU64,
}

impl AtomicCell {
    /// Creates a cell holding `value`.
    pub fn new(value: f64) -> Self {
        AtomicCell {
            bits: AtomicU64::new(value.to_bits()),
        }
    }

    /// Atomically adds `value`, returning the previous value.
    pub fn fetch_add(&self, value: f64) -> f64 {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let current_f = f64::from_bits(current);
            let new = f64::to_bits(current_f + value);
            match self
                .bits
                .compare_exchange_weak(current, new, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return current_f,
                Err(actual) => current = actual,
            }
        }
    }

    /// Reads the current value.
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn f64_fetch_add_is_exact_under_contention() {
        let mut value = 0.0f64;
        let ptr: *mut f64 = &mut value;
        // Wrap in a Sync shim so rayon can share the raw pointer.
        struct Ptr(*mut f64);
        unsafe impl Sync for Ptr {}
        let p = Ptr(ptr);
        let p = &p;
        (0..10_000).into_par_iter().for_each(|_| unsafe {
            fetch_add_f64(p.0, 1.0);
        });
        assert_eq!(value, 10_000.0);
    }

    #[test]
    fn f32_fetch_add_accumulates() {
        let mut value = 0.0f32;
        let ptr: *mut f32 = &mut value;
        struct Ptr(*mut f32);
        unsafe impl Sync for Ptr {}
        let p = Ptr(ptr);
        let p = &p;
        (0..2_048).into_par_iter().for_each(|_| unsafe {
            fetch_add_f32(p.0, 0.25);
        });
        assert_eq!(value, 512.0);
    }

    #[test]
    fn fetch_add_returns_previous_value() {
        let mut value = 10.0f64;
        let prev = unsafe { fetch_add_f64(&mut value, 5.0) };
        assert_eq!(prev, 10.0);
        assert_eq!(value, 15.0);
    }

    #[test]
    fn atomic_cell_parallel_sum() {
        let cell = AtomicCell::new(0.0);
        (0..5_000).into_par_iter().for_each(|_| {
            cell.fetch_add(2.0);
        });
        assert_eq!(cell.load(), 10_000.0);
    }

    #[test]
    fn atomic_cell_default_is_zero() {
        let cell = AtomicCell::default();
        assert_eq!(cell.load(), 0.0);
        let prev = cell.fetch_add(1.5);
        assert_eq!(prev, 0.0);
        assert_eq!(cell.load(), 1.5);
    }
}
