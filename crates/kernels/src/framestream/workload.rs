//! The `framestream` scenario: the streaming-dataset engine behind the
//! [`Workload`] interface.

use super::FrameStreamConfig;
use crate::workload::{
    check_int_range, paper_platform_pairs, Measurement, ParamSpec, Params, Workload, WorkloadError,
    WorkloadOutput,
};
use gpu_sim::PooledVec;
use hpc_metrics::framestream_bandwidth_gbs;

/// Decodes a validated parameter assignment into a stream configuration.
/// Functional validation is gated on the streamed-element budget inside
/// [`FrameStreamConfig::paper`].
pub fn config(params: &Params) -> Result<FrameStreamConfig, WorkloadError> {
    Ok(FrameStreamConfig::paper(
        params.int("n") as usize,
        params.int("frames") as usize,
    ))
}

/// The streaming-dataset workload (DESIGN.md §15).
pub struct FrameStreamWorkload;

impl Workload for FrameStreamWorkload {
    fn name(&self) -> &'static str {
        "framestream"
    }

    fn description(&self) -> &'static str {
        "streaming-dataset engine: EMA accumulation over multi-frame batches (§15)"
    }

    fn fom_label(&self) -> &'static str {
        "bandwidth_gbs"
    }

    fn size_param(&self) -> &'static str {
        "n"
    }

    fn params(&self) -> Vec<ParamSpec> {
        vec![
            ParamSpec::int("n", 16_384, "elements per frame"),
            ParamSpec::int("frames", 64, "frames in the batch"),
        ]
    }

    fn bench_sizes(&self) -> &'static [u64] {
        &[1 << 12, 1 << 14, 1 << 16]
    }

    fn validate(&self, params: &Params) -> Result<(), WorkloadError> {
        // 2 elements so the stream launch has something to cover; the
        // ceilings keep `n × frames × element size` far inside u64.
        check_int_range(params, "n", 2, 1 << 30)?;
        check_int_range(params, "frames", 1, 65_536)?;
        let _ = config(params)?;
        Ok(())
    }

    fn run_lane(
        &self,
        params: &Params,
        policy: crate::simd::LanePolicy,
    ) -> Result<WorkloadOutput, WorkloadError> {
        self.validate(params)?;
        let config = config(params)?;
        let mut measurements = PooledVec::new();
        for platform in paper_platform_pairs() {
            let run = super::run_lane(platform, &config, policy)?;
            let fom =
                framestream_bandwidth_gbs(config.n as u64, config.frames as u64, run.seconds());
            measurements.push(Measurement::from_run(&run, fom));
        }
        Ok(WorkloadOutput {
            params: params.clone(),
            measurements,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_execute_functionally_on_all_platforms() {
        let output = FrameStreamWorkload
            .run(&FrameStreamWorkload.default_params())
            .unwrap();
        assert_eq!(output.measurements.len(), 4);
        for m in &output.measurements {
            assert!(m.verification.starts_with("passed("), "{}", m.verification);
            assert_eq!(m.kernel, "framestream");
            assert!(m.fom > 0.0);
        }
    }

    #[test]
    fn oversized_batches_fall_back_to_the_cost_model() {
        let mut params = FrameStreamWorkload.default_params();
        params.apply_encoding("n=1048576,frames=1024").unwrap();
        let output = FrameStreamWorkload.run(&params).unwrap();
        for m in &output.measurements {
            assert!(m.verification.starts_with("skipped("), "{}", m.verification);
        }
    }

    #[test]
    fn validation_rejects_out_of_range_parameters() {
        for bad in ["n=1", "frames=0", "frames=100000", "n=2000000000"] {
            let mut params = FrameStreamWorkload.default_params();
            params.apply_encoding(bad).unwrap();
            assert!(
                FrameStreamWorkload.validate(&params).is_err(),
                "{bad} should be rejected"
            );
        }
    }
}
