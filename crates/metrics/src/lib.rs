//! The paper's figures of merit and statistical helpers.
//!
//! Each workload in the paper reports a different metric:
//!
//! * seven-point stencil — effective bandwidth, Eq. (1) ([`stencil`]),
//! * BabelStream — per-operation bandwidth, Eq. (2) ([`babelstream`]),
//! * miniBUDE — GFLOP/s, Eq. (3) ([`minibude`]),
//! * Hartree–Fock — raw kernel wall-clock time (no transformation),
//! * Jacobi / framestream — composite-pattern effective bandwidth
//!   ([`composite`], DESIGN.md §15),
//!
//! and Section 4.1 aggregates them into the application-efficiency
//! performance-portability metric Φ, Eq. (4) ([`portability`]).
//! [`roofline`] produces the roofline ceilings of Fig. 2, [`stats`]
//! summarises repeated runs, and [`output`] writes CSV/JSON experiment files.

#![warn(missing_docs)]

pub mod babelstream;
pub mod composite;
pub mod minibude;
pub mod output;
pub mod portability;
pub mod roofline;
pub mod stats;
pub mod stencil;

pub use babelstream::{babelstream_bandwidth_gbs, BabelStreamOp};
pub use composite::{
    framestream_bandwidth_gbs, framestream_traffic_bytes, jacobi_bandwidth_gbs,
    jacobi_traffic_bytes,
};
pub use minibude::{minibude_gflops, minibude_total_ops, MiniBudeSizes};
pub use portability::{efficiency, PortabilityEntry, PortabilityTable};
pub use roofline::{Roofline, RooflinePoint};
pub use stats::RunStats;
pub use stencil::{stencil_bandwidth_gbs, stencil_fetch_bytes, stencil_write_bytes};
