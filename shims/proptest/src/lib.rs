//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro over `#[test]` functions with `arg in strategy` bindings, range
//! strategies over the numeric primitives, `proptest::collection::vec`,
//! `proptest::array::uniform4`, `prop_assert!`/`prop_assert_eq!`, and
//! `ProptestConfig` for capping case counts (also honoured from the
//! `PROPTEST_CASES` environment variable).
//!
//! Sampling is deterministic: each test derives its generator seed from its
//! own name, so failures reproduce across runs.
//!
//! Failing cases shrink: integer-range, vector and array strategies propose
//! simpler variants of a failing input ([`Strategy::shrink`]), and the
//! [`proptest!`] macro greedily [`minimize`]s the failure before reporting
//! it, so the assertion fires on the simplest reproduction the strategies
//! can reach (e.g. the exact boundary length for a length-triggered bug).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Default number of cases per property when neither `ProptestConfig` nor
/// `PROPTEST_CASES` overrides it. Deliberately modest so the tier-1 suite
/// stays fast; raise via the environment for deeper soak runs.
pub const DEFAULT_CASES: u32 = 24;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` sampled cases. The `PROPTEST_CASES`
    /// environment variable takes precedence when set, so capped suites can
    /// still be soaked without editing code.
    pub fn with_cases(cases: u32) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(cases);
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: default_cases(),
        }
    }
}

/// Resolves the case count: `PROPTEST_CASES` env var or the default.
pub fn default_cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// Builds the deterministic generator for one named test.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
    /// Proposes strictly simpler variants of a failing `value`, simplest
    /// first; an empty vector means the value cannot shrink further. The
    /// default never shrinks — strategies opt in.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }
}

/// Integer ranges shrink toward the range start: the start itself, the
/// midpoint between start and the failing value, then the predecessor —
/// the classic bisection ladder, so [`minimize`] lands on the exact
/// smallest failing value.
macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *value > self.start {
                    let mid = self.start + (*value - self.start) / 2;
                    out.push(self.start);
                    if mid != self.start {
                        out.push(mid);
                    }
                    let prev = *value - 1;
                    if prev != self.start && prev != mid {
                        out.push(prev);
                    }
                }
                out
            }
        }
    )*};
}

/// Float ranges sample but do not shrink: there is no useful "simplest"
/// float short of the range start, and bisection over reals never
/// terminates on an exact bound.
macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize);
impl_float_range_strategy!(f32, f64);

/// Greedily minimises a failing `value`: repeatedly replaces it with the
/// first shrink candidate that still satisfies `fails`, until no candidate
/// does (or a step budget runs out). The result still fails whenever the
/// input did.
pub fn minimize<S: Strategy>(
    strategy: &S,
    mut value: S::Value,
    mut fails: impl FnMut(&S::Value) -> bool,
) -> S::Value {
    let mut budget = 1000usize;
    loop {
        let mut improved = false;
        for candidate in strategy.shrink(&value) {
            if budget == 0 {
                return value;
            }
            budget -= 1;
            if fails(&candidate) {
                value = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return value;
        }
    }
}

/// Tuples of strategies sample componentwise (left to right, so the random
/// stream matches sampling each argument in declaration order) and shrink
/// one component at a time.
macro_rules! impl_tuple_strategy {
    ($(($S:ident, $idx:tt)),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+)
        where
            $($S::Value: Clone,)+
        {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut trial = value.clone();
                        trial.$idx = candidate;
                        out.push(trial);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_strategy!((S0, 0));
impl_tuple_strategy!((S0, 0), (S1, 1));
impl_tuple_strategy!((S0, 0), (S1, 1), (S2, 2));
impl_tuple_strategy!((S0, 0), (S1, 1), (S2, 2), (S3, 3));
impl_tuple_strategy!((S0, 0), (S1, 1), (S2, 2), (S3, 3), (S4, 4));
impl_tuple_strategy!((S0, 0), (S1, 1), (S2, 2), (S3, 3), (S4, 4), (S5, 5));
impl_tuple_strategy!(
    (S0, 0),
    (S1, 1),
    (S2, 2),
    (S3, 3),
    (S4, 4),
    (S5, 5),
    (S6, 6)
);
impl_tuple_strategy!(
    (S0, 0),
    (S1, 1),
    (S2, 2),
    (S3, 3),
    (S4, 4),
    (S5, 5),
    (S6, 6),
    (S7, 7)
);
impl_tuple_strategy!(
    (S0, 0),
    (S1, 1),
    (S2, 2),
    (S3, 3),
    (S4, 4),
    (S5, 5),
    (S6, 6),
    (S7, 7),
    (S8, 8)
);

/// Zero-argument properties still sample a (unit) input per case.
impl Strategy for () {
    type Value = ();
    fn sample(&self, _rng: &mut StdRng) -> Self::Value {}
}

/// Pins a property body's parameter to its strategy's value type, so the
/// closure type-checks against concrete argument types. Implementation
/// detail of [`proptest!`]; not public API.
#[doc(hidden)]
pub fn __typed_body<S, F>(_strategy: &S, body: F) -> F
where
    S: Strategy,
    F: Fn(&S::Value),
{
    body
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len` and elements
    /// from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.len.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
        /// Shrinks the length first (halve toward the minimum, then drop one
        /// element) so [`crate::minimize`] bisects to the exact shortest
        /// failing length, then shrinks elements in place one at a time.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            if value.len() > self.len.start {
                let half = self.len.start.max(value.len() / 2);
                if half < value.len() {
                    out.push(value[..half].to_vec());
                }
                let shorter = value.len() - 1;
                if shorter >= self.len.start && shorter != half {
                    out.push(value[..shorter].to_vec());
                }
            }
            for (i, element) in value.iter().enumerate() {
                if let Some(candidate) = self.element.shrink(element).into_iter().next() {
                    let mut trial = value.clone();
                    trial[i] = candidate;
                    out.push(trial);
                }
            }
            out
        }
    }
}

/// Array strategies (`proptest::array`).
pub mod array {
    use super::{StdRng, Strategy};

    /// Strategy producing fixed-size arrays of `N` elements.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N>
    where
        S::Value: Clone,
    {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut StdRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.sample(rng))
        }
        fn shrink(&self, value: &[S::Value; N]) -> Vec<[S::Value; N]> {
            let mut out = Vec::new();
            for (i, element) in value.iter().enumerate() {
                if let Some(candidate) = self.element.shrink(element).into_iter().next() {
                    let mut trial = value.clone();
                    trial[i] = candidate;
                    out.push(trial);
                }
            }
            out
        }
    }

    /// Four values drawn from the same element strategy.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
        UniformArray { element }
    }
}

/// The proptest-style glob import.
pub mod prelude {
    pub use crate::{
        minimize, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares a block of property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` becomes a `#[test]` that
/// samples its arguments `cases` times from a deterministic generator and
/// runs the body on every sample. When a case fails, the failing input is
/// greedily [`minimize`]d through the strategies' shrink candidates, the
/// minimized input is printed, and the body re-runs on it un-caught so the
/// test fails with the assertion for the simplest reproduction.
///
/// Attributes written on a property (doc comments, `#[should_panic]`, ...)
/// are forwarded to the generated `#[test]`; do not add `#[test]` yourself.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __cases: u32 = ($cfg).cases;
                let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                let __strategy = ($(($strat),)*);
                let __body = $crate::__typed_body(&__strategy, |__inputs| {
                    let ($($arg,)*) = ::std::clone::Clone::clone(__inputs);
                    $body
                });
                for __case in 0..__cases {
                    let __inputs = $crate::Strategy::sample(&__strategy, &mut __rng);
                    let __failed = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || __body(&__inputs),
                    ))
                    .is_err();
                    if __failed {
                        let __minimized = $crate::minimize(&__strategy, __inputs, |__trial| {
                            ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                                || __body(__trial),
                            ))
                            .is_err()
                        });
                        eprintln!(
                            "proptest: {} case {} failed; minimized input: {:?}",
                            stringify!($name),
                            __case + 1,
                            &__minimized
                        );
                        __body(&__minimized);
                        unreachable!("proptest: minimized input stopped failing");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro wires strategies, bindings and assertions together.
        fn ranges_stay_in_bounds(a in 1u32..32, x in -2.0f64..2.0) {
            prop_assert!((1..32).contains(&a));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        fn vectors_respect_length_bounds(v in crate::collection::vec(0.0f64..1.0, 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|e| (0.0..1.0).contains(e)));
        }

        fn arrays_have_four_lanes(a in crate::array::uniform4(-1.0f32..1.0)) {
            prop_assert_eq!(a.len(), 4);
        }

        /// End-to-end shrinking: the seeded failure (some sampled vector with
        /// ten or more elements) minimizes to the exact boundary — length 10,
        /// every element at the range start — before the assertion fires.
        #[should_panic(expected = "len 10")]
        fn seeded_failures_shrink_to_the_boundary(
            v in crate::collection::vec(0u32..100, 1..40),
        ) {
            prop_assert!(v.len() < 10, "len {}", v.len());
        }
    }

    #[test]
    fn integer_shrinking_bisects_to_the_smallest_failing_value() {
        let strategy = 0u32..100;
        assert_eq!(crate::minimize(&strategy, 57, |v| *v >= 13), 13);
        assert_eq!(crate::minimize(&strategy, 13, |v| *v >= 13), 13);
        // A failure at the range start cannot shrink at all.
        assert!(strategy.shrink(&0).is_empty());
    }

    #[test]
    fn vector_shrinking_reaches_the_exact_length_bound() {
        let strategy = crate::collection::vec(1u32..100, 1..64);
        let start: Vec<u32> = (1..=37).collect();
        let minimized = crate::minimize(&strategy, start, |v| v.len() >= 10);
        // Length bisects to the exact bound and surviving elements shrink
        // toward their own range start.
        assert_eq!(minimized, vec![1u32; 10]);
    }

    #[test]
    fn seeds_differ_per_test_name() {
        use rand::Rng;
        let mut a = crate::test_rng("a");
        let mut b = crate::test_rng("b");
        assert_ne!(a.gen::<f64>(), b.gen::<f64>());
    }
}
