//! Hartree–Fock electron-repulsion workload — paper Listing 5, Table 4.
//!
//! The kernel evaluates two-electron repulsion integrals (ERIs) over pairs of
//! atom pairs of a helium system and scatters each integral into the Fock
//! matrix with six FP64 `Atomic.fetch_add` updates. The quartet loop is
//! embarrassingly parallel, but the atomic updates serialise heavily — which
//! is exactly the behaviour the paper measures (Table 4 reports raw kernel
//! wall-clock times as the figure of merit).
//!
//! The original proxy app reads helium test decks (`he64` … `he1024`); this
//! reproduction generates the same systems synthetically (a helium lattice
//! with STO-3G-like Gaussian parameters, see [`HeliumSystem`]) and keeps the
//! Schwarz screening, the four nested Gaussian loops and the six atomic
//! updates of Listing 5.

mod config;
mod cost;
mod geometry;
mod portable;
mod reference;
mod sampled;
mod triangular;
mod vendor;
pub mod workload;

pub use config::{HartreeFockConfig, DEFAULT_SCREENING_TOL, MAX_FUNCTIONAL_NATOMS};
pub use cost::{hartree_fock_cost, surviving_quartets};
pub use geometry::HeliumSystem;
pub use portable::{run_portable, run_portable_lane};
pub use reference::{quartet_eri, reference_fock};
pub use sampled::{
    run_sampled, run_sampled_weighted, shard_ranges, SampleWeighting, SampledPlan,
    SampledValidation, ShardStats, DEFAULT_SAMPLES, DEFAULT_SHARDS,
};
pub use triangular::{pair_count, pair_decode, pair_encode, quartet_decode};
pub use vendor::run_vendor;

use crate::common::WorkloadRun;
use crate::simd::{self, LanePolicy};
use gpu_sim::SimError;
use vendor_models::Platform;

/// Runs the Hartree–Fock workload on a platform, dispatching on the backend,
/// under the process-wide lane policy.
pub fn run(platform: &Platform, config: &HartreeFockConfig) -> Result<WorkloadRun, SimError> {
    run_lane(platform, config, simd::process_policy())
}

/// Runs the Hartree–Fock workload under an explicit lane policy. The vendor
/// baselines have no host fast lane and ignore the policy.
pub fn run_lane(
    platform: &Platform,
    config: &HartreeFockConfig,
    policy: LanePolicy,
) -> Result<WorkloadRun, SimError> {
    if platform.backend.is_portable() {
        run_portable_lane(platform, config, policy)
    } else {
        run_vendor(platform, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_and_vendor_verify_against_the_reference() {
        let config = HartreeFockConfig::validation(12);
        for platform in Platform::paper_platforms() {
            let run = run(&platform, &config).unwrap();
            assert!(
                run.verification.is_verified(),
                "{} should verify",
                platform.label()
            );
        }
    }

    #[test]
    fn mojo_beats_cuda_at_256_atoms_and_collapses_at_1024() {
        // Table 4 (H100): Mojo 187 ms vs CUDA 472 ms at 256 atoms (≈2.5×
        // faster), but 147 s vs 2.7 s at 1024 atoms (dramatic collapse).
        let small = HartreeFockConfig::paper(256, 3);
        let mojo = run(&Platform::portable_h100(), &small).unwrap();
        let cuda = run(&Platform::cuda_h100(false), &small).unwrap();
        let speedup = cuda.seconds() / mojo.seconds();
        assert!(
            speedup > 1.8 && speedup < 3.2,
            "Mojo should be ≈2.5× faster than CUDA at 256 atoms, got {speedup:.2}×"
        );

        let large = HartreeFockConfig::paper(1024, 6);
        let mojo_large = run(&Platform::portable_h100(), &large).unwrap();
        let cuda_large = run(&Platform::cuda_h100(false), &large).unwrap();
        assert!(
            mojo_large.seconds() > 20.0 * cuda_large.seconds(),
            "Mojo should collapse at 1024 atoms (got {:.1}× slower)",
            mojo_large.seconds() / cuda_large.seconds()
        );
    }

    #[test]
    fn mojo_badly_trails_hip_on_mi300a() {
        // Table 4 (MI300A): Mojo 25,266 ms vs HIP 178 ms at 256 atoms.
        let config = HartreeFockConfig::paper(256, 3);
        let mojo = run(&Platform::portable_mi300a(), &config).unwrap();
        let hip = run(&Platform::hip_mi300a(false), &config).unwrap();
        let slowdown = mojo.seconds() / hip.seconds();
        assert!(
            slowdown > 50.0,
            "Mojo should be orders of magnitude slower than HIP, got {slowdown:.0}×"
        );
    }

    #[test]
    fn hip_beats_cuda_at_every_size() {
        // Table 4: the HIP column is faster than the CUDA column at every size.
        for natoms in [64, 128, 256] {
            let config = HartreeFockConfig::paper(natoms, 3);
            let cuda = run(&Platform::cuda_h100(false), &config).unwrap();
            let hip = run(&Platform::hip_mi300a(false), &config).unwrap();
            assert!(hip.seconds() < cuda.seconds(), "natoms = {natoms}");
        }
    }
}
