//! A deterministic GPU device simulator.
//!
//! The paper's experiments run on an NVIDIA H100 and an AMD MI300A. Neither is
//! available to this reproduction, so every kernel executes *functionally* on
//! the host CPU through this crate (numerics are real and validated against
//! CPU references) while *time* is charged by an analytic model built from the
//! devices' published peaks ([`gpu_spec`]) and per-backend code-generation
//! profiles (provided by the `vendor-models` crate).
//!
//! The crate provides:
//!
//! * [`memory`] — a device-memory pool with typed buffers that follow GPU
//!   semantics (unsynchronised concurrent writes are allowed and are the
//!   kernel author's responsibility, exactly as on real devices);
//! * [`dim`] — `Dim3` grids/blocks and validated launch configurations;
//! * [`exec`] — the flat executor that runs one closure per simulated thread,
//!   scheduling contiguous chunks of blocks onto the persistent rayon pool;
//! * [`coop`] — a bulk-synchronous engine for kernels that use block shared
//!   memory and barriers (the BabelStream `dot` reduction);
//! * [`pool`] — the process-wide size-classed buffer pool behind device
//!   buffers, executor scratch, and pooled host staging ([`PooledVec`]): in
//!   steady state a repeated launch touches the global allocator zero times;
//! * [`intern`] — interned strings ([`IStr`]) for the run-labelling hot path;
//! * [`atomics`] — device-global atomic operations (FP64/FP32 `fetch_add`);
//! * [`stats`] — the analytic cost description of a launch (bytes moved,
//!   FLOPs by class, atomics, access pattern);
//! * [`timing`] — the roofline-plus-codegen timing model that converts a cost
//!   and an execution profile into a simulated duration;
//! * [`profiler`] — NCU-style profiling reports (Tables 2–3 of the paper);
//! * [`isa`] — instruction-mix summaries (the paper's Figure 5 SASS analysis).

#![warn(missing_docs)]

pub mod atomics;
pub mod coop;
pub mod dim;
pub mod error;
pub mod exec;
pub mod intern;
pub mod isa;
pub mod memory;
pub mod pool;
pub mod profiler;
pub mod slice;
pub mod stats;
pub mod timing;

pub use atomics::AtomicCell;
pub use coop::{CoopKernel, CoopLaunch, PhaseOutcome};
pub use dim::{Dim3, LaunchConfig};
pub use error::SimError;
pub use exec::{launch_flat, ThreadCtx};
pub use intern::{istr, istr_fmt, IStr};
pub use memory::{Device, DeviceBuffer};
pub use pool::{PoolStats, PooledVec};
pub use profiler::{MemoryReport, ProfileReport};
pub use slice::UnsafeSlice;
pub use stats::{AccessPattern, FlopCounts, KernelCost};
pub use timing::{Bottleneck, ExecutionProfile, LaunchTiming, TimingModel};
