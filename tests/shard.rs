//! Integration tests of the sharded multi-process mode, through the real
//! binary: the `shard` coordinator's merge must be **byte-identical** to the
//! single-process command (stdout and files), shard workers must emit valid
//! shard documents (including for empty shards), and malformed shard specs
//! must be usage errors. Protocol: DESIGN.md §10.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn mojo_hpc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mojo-hpc"))
        .args(args)
        .output()
        .expect("run mojo-hpc")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn scratch(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("shard-scratch")
        .join(format!("{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Asserts two directories hold the same file names with identical bytes.
fn assert_same_files(dir_a: &Path, dir_b: &Path) {
    let names = |dir: &Path| -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
            .filter_map(|entry| entry.ok())
            .filter_map(|entry| entry.file_name().into_string().ok())
            .collect();
        names.sort();
        names
    };
    let (names_a, names_b) = (names(dir_a), names(dir_b));
    assert_eq!(names_a, names_b, "file sets differ");
    for name in &names_a {
        let a = std::fs::read(dir_a.join(name)).unwrap();
        let b = std::fs::read(dir_b.join(name)).unwrap();
        assert!(a == b, "{name} differs between the single and sharded run");
    }
}

#[test]
fn shard_run_all_is_byte_identical_to_the_single_process_run() {
    let single_out = scratch("run-single");
    let sharded_out = scratch("run-sharded");
    let single = mojo_hpc(&[
        "run",
        "--all",
        "--format",
        "json",
        "--out",
        single_out.to_str().unwrap(),
    ]);
    assert_eq!(single.status.code(), Some(0), "{}", stderr(&single));
    let sharded = mojo_hpc(&[
        "shard",
        "run",
        "--all",
        "--workers",
        "3",
        "--format",
        "json",
        "--out",
        sharded_out.to_str().unwrap(),
    ]);
    assert_eq!(sharded.status.code(), Some(0), "{}", stderr(&sharded));
    assert_eq!(
        stdout(&single),
        stdout(&sharded),
        "sharded stdout differs from the single-process run"
    );
    assert_same_files(&single_out, &sharded_out);
    // And against the committed goldens, via the binary's own diff lane.
    let golden = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/json");
    let diff = mojo_hpc(&[
        "diff",
        golden.to_str().unwrap(),
        sharded_out.to_str().unwrap(),
    ]);
    assert_eq!(diff.status.code(), Some(0), "{}", stdout(&diff));
    std::fs::remove_dir_all(&single_out).ok();
    std::fs::remove_dir_all(&sharded_out).ok();
}

#[test]
fn shard_run_csv_lane_matches_single_process_output() {
    let single_out = scratch("csv-single");
    let sharded_out = scratch("csv-sharded");
    let single = mojo_hpc(&[
        "run",
        "table1",
        "fig2",
        "fig5",
        "--out",
        single_out.to_str().unwrap(),
    ]);
    let sharded = mojo_hpc(&[
        "shard",
        "run",
        "table1",
        "fig2",
        "fig5",
        "--workers",
        "2",
        "--out",
        sharded_out.to_str().unwrap(),
    ]);
    assert_eq!(sharded.status.code(), Some(0), "{}", stderr(&sharded));
    assert_eq!(stdout(&single), stdout(&sharded));
    assert_same_files(&single_out, &sharded_out);
    std::fs::remove_dir_all(&single_out).ok();
    std::fs::remove_dir_all(&sharded_out).ok();
}

#[test]
fn shard_sweep_merges_byte_identically_including_empty_shards() {
    let single_out = scratch("sweep-single");
    let sharded_out = scratch("sweep-sharded");
    let single = mojo_hpc(&[
        "sweep",
        "stencil",
        "--sizes",
        "16,20,24",
        "precision=fp32",
        "--format",
        "json",
        "--out",
        single_out.to_str().unwrap(),
    ]);
    // 5 workers over 3 points: two shards are empty and contribute nothing.
    let sharded = mojo_hpc(&[
        "shard",
        "sweep",
        "stencil",
        "--sizes",
        "16,20,24",
        "precision=fp32",
        "--workers",
        "5",
        "--format",
        "json",
        "--out",
        sharded_out.to_str().unwrap(),
    ]);
    assert_eq!(sharded.status.code(), Some(0), "{}", stderr(&sharded));
    assert_eq!(stdout(&single), stdout(&sharded));
    assert_same_files(&single_out, &sharded_out);
    std::fs::remove_dir_all(&single_out).ok();
    std::fs::remove_dir_all(&sharded_out).ok();
}

#[test]
fn composite_workload_shard_sweeps_merge_byte_identically() {
    // The §15 composite engines ride the same shard protocol: a 3-worker
    // sweep must merge to the exact bytes of the single-process run, stdout
    // and files alike.
    for (workload, sizes, extra) in [
        ("jacobi", "8,12,16", "iters=200"),
        ("framestream", "4096,8192,16384", "frames=32"),
    ] {
        let single_out = scratch(&format!("{workload}-single"));
        let sharded_out = scratch(&format!("{workload}-sharded"));
        let single = mojo_hpc(&[
            "sweep",
            workload,
            "--sizes",
            sizes,
            extra,
            "--format",
            "json",
            "--out",
            single_out.to_str().unwrap(),
        ]);
        assert_eq!(single.status.code(), Some(0), "{}", stderr(&single));
        let sharded = mojo_hpc(&[
            "shard",
            "sweep",
            workload,
            "--sizes",
            sizes,
            extra,
            "--workers",
            "3",
            "--format",
            "json",
            "--out",
            sharded_out.to_str().unwrap(),
        ]);
        assert_eq!(sharded.status.code(), Some(0), "{}", stderr(&sharded));
        assert_eq!(
            stdout(&single),
            stdout(&sharded),
            "{workload}: sharded stdout differs from the single-process run"
        );
        assert_same_files(&single_out, &sharded_out);
        std::fs::remove_dir_all(&single_out).ok();
        std::fs::remove_dir_all(&sharded_out).ok();
    }
}

#[test]
fn single_worker_shard_equals_the_unsharded_command() {
    let single = mojo_hpc(&["sweep", "stencil", "--sizes", "16,20"]);
    let sharded = mojo_hpc(&[
        "shard",
        "sweep",
        "stencil",
        "--sizes",
        "16,20",
        "--workers",
        "1",
    ]);
    assert_eq!(sharded.status.code(), Some(0), "{}", stderr(&sharded));
    assert_eq!(stdout(&single), stdout(&sharded));
}

#[test]
fn worker_mode_emits_a_shard_document_and_covers_all_items_at_0_of_1() {
    let output = mojo_hpc(&[
        "run", "table1", "fig5", "--format", "json", "--shard", "0/1",
    ]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(text.starts_with('{'), "shard document is one JSON object");
    assert!(text.contains("\"manifest\""), "{text}");
    assert!(text.contains("\"command\": \"run\""), "{text}");
    assert!(text.contains("\"shard\": 0") && text.contains("\"shards\": 1"));
    assert!(text.contains("\"id\": \"table1\"") && text.contains("\"id\": \"fig5\""));
}

#[test]
fn an_empty_shard_emits_a_manifest_with_no_reports() {
    // 3 workers over 2 experiments: shard 0/3 covers [0, 2/3) = nothing.
    let output = mojo_hpc(&["run", "table1", "fig5", "--shard", "0/3"]);
    assert_eq!(output.status.code(), Some(0), "{}", stderr(&output));
    let text = stdout(&output);
    assert!(text.contains("\"count\": 0"), "{text}");
    assert!(text.contains("\"items\": []"), "{text}");
    assert!(text.contains("\"reports\": []"), "{text}");
    // The coordinator still merges the set cleanly.
    let merged = mojo_hpc(&["shard", "run", "table1", "fig5", "--workers", "3"]);
    assert_eq!(merged.status.code(), Some(0), "{}", stderr(&merged));
    assert_eq!(
        stdout(&merged),
        stdout(&mojo_hpc(&["run", "table1", "fig5"]))
    );
}

#[test]
fn out_of_range_and_overlapping_shard_specs_are_usage_errors() {
    for line in [
        vec!["run", "--all", "--shard", "3/3"],
        vec!["run", "--all", "--shard", "5/3"],
        vec!["run", "--all", "--shard", "1/0"],
        vec!["run", "--all", "--shard", "2"],
        vec!["run", "--all", "--shard", "0/3", "--shard", "1/3"],
        vec!["run", "--all", "--format", "csv", "--shard", "0/3"],
        vec![
            "sweep", "stencil", "--sizes", "16", "--shard", "1/1", "--shard", "0/1",
        ],
        vec!["shard", "run", "--all"],
        vec!["shard", "run", "--all", "--workers", "0"],
        vec!["shard", "run", "--all", "--workers", "2", "--shard", "0/2"],
        vec!["shard", "diff", "a", "b", "--workers", "2"],
    ] {
        let output = mojo_hpc(&line);
        assert_eq!(
            output.status.code(),
            Some(2),
            "expected a usage error for {line:?}: {}",
            stderr(&output)
        );
        assert!(
            stderr(&output).contains("USAGE"),
            "usage text missing for {line:?}"
        );
    }
}

#[test]
fn presets_round_trip_through_the_cli_and_feed_shard_workers() {
    let out = scratch("preset");
    let preset = out.join("stencil.json");
    // Save a resolved configuration next to a normal sweep run.
    let save = mojo_hpc(&[
        "sweep",
        "stencil",
        "--sizes",
        "16,20",
        "precision=fp32",
        "--preset-out",
        preset.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]);
    assert_eq!(save.status.code(), Some(0), "{}", stderr(&save));
    let text = std::fs::read_to_string(&preset).unwrap();
    assert!(text.contains("\"workload\": \"stencil\""), "{text}");
    assert!(text.contains("precision=fp32"), "{text}");
    // Replaying the preset reproduces the run byte-for-byte.
    let replay = mojo_hpc(&["sweep", "--preset", preset.to_str().unwrap()]);
    assert_eq!(replay.status.code(), Some(0), "{}", stderr(&replay));
    assert_eq!(stdout(&replay), stdout(&save));
    // A preset-fed worker shards the preset's size list.
    let worker = mojo_hpc(&[
        "sweep",
        "--preset",
        preset.to_str().unwrap(),
        "--shard",
        "1/2",
    ]);
    assert_eq!(worker.status.code(), Some(0), "{}", stderr(&worker));
    let doc = stdout(&worker);
    assert!(doc.contains("\"command\": \"sweep\""), "{doc}");
    assert!(doc.contains("\"items\": [\n      \"20\"\n    ]"), "{doc}");
    // Unreadable presets are usage errors.
    let missing = mojo_hpc(&["sweep", "--preset", "/nonexistent/preset.json"]);
    assert_eq!(missing.status.code(), Some(2));
    std::fs::remove_dir_all(&out).ok();
}

#[test]
fn a_crashed_worker_fails_the_fan_out_naming_its_shard() {
    use mojo_hpc::report::shard::run_workers_with_exe;
    // Workers that exit nonzero: every failing shard is named.
    let err = run_workers_with_exe(Path::new("/bin/false"), &[vec![], vec![]])
        .expect_err("nonzero workers must fail the fan-out");
    assert!(err.contains("shard 0/2"), "{err}");
    assert!(err.contains("shard 1/2"), "{err}");
    // A worker that exits 0 but prints garbage is equally fatal.
    let err = run_workers_with_exe(Path::new("/bin/echo"), &[vec!["not-json".to_string()]])
        .expect_err("garbled worker stdout must fail the fan-out");
    assert!(err.contains("shard 0/1"), "{err}");
    assert!(err.contains("JSON"), "{err}");
}

#[test]
fn coordinator_validation_failures_exit_before_spawning_workers() {
    // An invalid sweep point (l=2 is a degenerate grid) is caught by the
    // coordinator's own up-front validation: usage error, no workers run.
    let output = mojo_hpc(&[
        "shard",
        "sweep",
        "stencil",
        "--sizes",
        "2",
        "--workers",
        "2",
    ]);
    assert_eq!(output.status.code(), Some(2), "{}", stderr(&output));
    let unknown = mojo_hpc(&[
        "shard",
        "sweep",
        "frobnicate",
        "--sizes",
        "8",
        "--workers",
        "2",
    ]);
    assert_eq!(unknown.status.code(), Some(2));
    assert!(
        stderr(&unknown).contains("unknown workload"),
        "{}",
        stderr(&unknown)
    );
}

#[test]
fn diff_compares_json_report_directories() {
    let dir_a = scratch("jdiff-a");
    let dir_b = scratch("jdiff-b");
    let doc = "{\n  \"id\": \"x\",\n  \"tables\": []\n}\n";
    std::fs::write(dir_a.join("x.json"), doc).unwrap();
    std::fs::write(dir_b.join("x.json"), doc).unwrap();
    let same = mojo_hpc(&["diff", dir_a.to_str().unwrap(), dir_b.to_str().unwrap()]);
    assert_eq!(same.status.code(), Some(0));

    std::fs::write(
        dir_b.join("x.json"),
        "{\n  \"id\": \"y\",\n  \"tables\": []\n}\n",
    )
    .unwrap();
    let changed = mojo_hpc(&["diff", dir_a.to_str().unwrap(), dir_b.to_str().unwrap()]);
    assert_eq!(changed.status.code(), Some(1));
    let text = stdout(&changed);
    assert!(text.contains("x.json: line 1 differs"), "{text}");

    // JSON files present on only one side are differences too.
    std::fs::remove_file(dir_b.join("x.json")).unwrap();
    let missing = mojo_hpc(&["diff", dir_a.to_str().unwrap(), dir_b.to_str().unwrap()]);
    assert_eq!(missing.status.code(), Some(1));
    assert!(stdout(&missing).contains("x.json: only in"));
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}
