//! Cooperative (shared-memory + barrier) kernel execution.
//!
//! The BabelStream `dot` kernel (paper Listing 3) is the one kernel in the
//! study that uses block-level shared memory and `barrier()`: each thread
//! accumulates a grid-strided partial product into a shared array, then the
//! block performs a tree reduction with a barrier between halving steps.
//!
//! The simulator realises barrier semantics with a *bulk-synchronous phase
//! engine*: a cooperative kernel is expressed as a sequence of phases, where a
//! `barrier()` in GPU code corresponds to a phase boundary here. Within one
//! phase the engine runs every thread of the block to completion (sequentially
//! — which is a legal interleaving for any data-race-free kernel); between
//! phases all threads of the block are synchronised, which is exactly what the
//! barrier guarantees. Thread-private state that must survive across barriers
//! lives in the kernel's `ThreadState` associated type, playing the role of
//! registers.

use crate::dim::{Dim3, LaunchConfig};
use crate::exec::ThreadCtx;
use crate::pool::PooledVec;
use rayon::prelude::*;

/// What a thread wants to do after finishing a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseOutcome {
    /// The thread has more work after the next barrier.
    Continue,
    /// The thread has finished the kernel.
    Done,
}

/// A kernel that uses block shared memory and barriers.
///
/// `phase(p, ...)` is called for every thread of a block with `p = 0, 1, 2, …`
/// until *all* threads of the block have returned [`PhaseOutcome::Done`].
/// Each phase boundary corresponds to a `barrier()` in the CUDA/HIP/Mojo
/// source. Threads that are already done are not called again.
pub trait CoopKernel: Sync {
    /// Element type of the block's shared-memory scratch array. (`'static` so
    /// the engine can recycle scratch storage through the process-wide
    /// [`crate::pool`].)
    type Shared: Copy + Default + Send + Sync + 'static;
    /// Thread-private state that persists across phases ("registers").
    type ThreadState: Default + Send + 'static;

    /// Length (in elements) of the shared array each block allocates.
    fn shared_len(&self, block_dim: Dim3) -> usize;

    /// Executes one phase for one thread.
    fn phase(
        &self,
        phase: usize,
        ctx: ThreadCtx,
        state: &mut Self::ThreadState,
        shared: &mut [Self::Shared],
    ) -> PhaseOutcome;
}

/// Launches cooperative kernels on the simulator.
pub struct CoopLaunch;

/// Safety valve: a cooperative kernel that never converges is a bug; the
/// engine aborts after this many phases.
const MAX_PHASES: usize = 1_000_000;

impl CoopLaunch {
    /// Runs `kernel` over the launch configuration. Contiguous chunks of
    /// blocks execute in parallel on the persistent pool; threads within a
    /// block follow the bulk-synchronous schedule described in the module
    /// documentation. The shared/state/flag scratch buffers of a chunk are
    /// [`PooledVec`]s checked out of the process-wide size-classed pool
    /// (replacing PR 2's `TypeId`-keyed thread-local arena lookup on this
    /// path): each chunk reuses them across every block it runs, and warm
    /// launches reuse the shelved blocks of earlier launches.
    pub fn run<K: CoopKernel>(cfg: &LaunchConfig, kernel: &K) {
        let grid = cfg.grid;
        let block = cfg.block;
        let threads_per_block = cfg.threads_per_block() as usize;
        let shared_len = kernel.shared_len(block);
        let num_blocks = cfg.num_blocks();
        let chunk = crate::exec::block_chunk_len(num_blocks);
        let num_chunks = num_blocks.div_ceil(chunk);

        (0..num_chunks).into_par_iter().for_each(|chunk_index| {
            let mut shared: PooledVec<K::Shared> = PooledVec::with_capacity(shared_len);
            let mut states: PooledVec<K::ThreadState> = PooledVec::new();
            let mut done: PooledVec<bool> = PooledVec::with_capacity(threads_per_block);
            let start = chunk_index * chunk;
            let end = (start + chunk).min(num_blocks);
            for block_linear in start..end {
                let (bx, by, bz) = grid.delinearize(block_linear);
                shared.clear();
                shared.resize(shared_len, K::Shared::default());
                states.clear();
                states.resize_with(threads_per_block, K::ThreadState::default);
                done.clear();
                done.resize(threads_per_block, false);
                Self::run_block(
                    kernel,
                    Dim3::new(bx, by, bz),
                    block,
                    grid,
                    &mut shared,
                    &mut states,
                    &mut done,
                );
            }
        });
    }

    /// Runs one block to completion using caller-provided scratch buffers.
    fn run_block<K: CoopKernel>(
        kernel: &K,
        block_idx: Dim3,
        block: Dim3,
        grid: Dim3,
        shared: &mut [K::Shared],
        states: &mut [K::ThreadState],
        done: &mut [bool],
    ) {
        let threads_per_block = states.len();
        let mut remaining = threads_per_block;
        let mut phase = 0usize;
        while remaining > 0 {
            assert!(
                phase < MAX_PHASES,
                "cooperative kernel did not converge within {MAX_PHASES} phases"
            );
            for thread_linear in 0..threads_per_block {
                if done[thread_linear] {
                    continue;
                }
                let (tx, ty, tz) = block.delinearize(thread_linear as u64);
                let ctx = ThreadCtx {
                    thread_idx: Dim3::new(tx, ty, tz),
                    block_idx,
                    block_dim: block,
                    grid_dim: grid,
                };
                let outcome = kernel.phase(phase, ctx, &mut states[thread_linear], shared);
                if outcome == PhaseOutcome::Done {
                    done[thread_linear] = true;
                    remaining -= 1;
                }
            }
            phase += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::UnsafeSlice;

    /// A block-wide tree reduction over per-thread values, structured exactly
    /// like the BabelStream dot kernel: phase 0 loads, later phases halve.
    struct BlockSumKernel<'a> {
        input: &'a [f64],
        output: UnsafeSlice<'a, f64>,
    }

    #[derive(Default)]
    struct SumState;

    impl CoopKernel for BlockSumKernel<'_> {
        type Shared = f64;
        type ThreadState = SumState;

        fn shared_len(&self, block_dim: Dim3) -> usize {
            block_dim.total() as usize
        }

        fn phase(
            &self,
            phase: usize,
            ctx: ThreadCtx,
            _state: &mut SumState,
            shared: &mut [f64],
        ) -> PhaseOutcome {
            let tid = ctx.thread_idx.x as usize;
            let bs = ctx.block_dim.x as usize;
            if phase == 0 {
                let gid = ctx.global_x() as usize;
                shared[tid] = if gid < self.input.len() {
                    self.input[gid]
                } else {
                    0.0
                };
                return PhaseOutcome::Continue;
            }
            // Reduction phase p halves the active range: offset = bs >> p.
            let offset = bs >> phase;
            if offset == 0 {
                if tid == 0 {
                    self.output.write(ctx.block_idx.x as usize, shared[0]);
                }
                return PhaseOutcome::Done;
            }
            if tid < offset {
                shared[tid] += shared[tid + offset];
            }
            PhaseOutcome::Continue
        }
    }

    #[test]
    fn block_tree_reduction_matches_sequential_sum() {
        let n = 4096usize;
        let block_size = 256u32;
        let input: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.5).collect();
        let cfg = LaunchConfig::cover_1d(n as u64, block_size);
        let mut partials = vec![0.0f64; cfg.num_blocks() as usize];
        {
            let kernel = BlockSumKernel {
                input: &input,
                output: UnsafeSlice::new(&mut partials),
            };
            CoopLaunch::run(&cfg, &kernel);
        }
        let total: f64 = partials.iter().sum();
        let expected: f64 = input.iter().sum();
        assert!((total - expected).abs() < 1e-9);
    }

    #[test]
    fn works_with_non_power_of_two_input() {
        let n = 1000usize;
        let block_size = 128u32;
        let input: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let cfg = LaunchConfig::cover_1d(n as u64, block_size);
        let mut partials = vec![0.0f64; cfg.num_blocks() as usize];
        {
            let kernel = BlockSumKernel {
                input: &input,
                output: UnsafeSlice::new(&mut partials),
            };
            CoopLaunch::run(&cfg, &kernel);
        }
        let total: f64 = partials.iter().sum();
        let expected = (n * (n - 1) / 2) as f64;
        assert!((total - expected).abs() < 1e-6);
    }

    /// A kernel where different threads finish in different phases, checking
    /// the engine's per-thread completion tracking.
    struct StaggeredKernel<'a> {
        output: UnsafeSlice<'a, u32>,
    }

    #[derive(Default)]
    struct StagState {
        count: u32,
    }

    impl CoopKernel for StaggeredKernel<'_> {
        type Shared = u32;
        type ThreadState = StagState;

        fn shared_len(&self, _block_dim: Dim3) -> usize {
            1
        }

        fn phase(
            &self,
            _phase: usize,
            ctx: ThreadCtx,
            state: &mut StagState,
            _shared: &mut [u32],
        ) -> PhaseOutcome {
            state.count += 1;
            // Thread t finishes after t+1 phases.
            if state.count > ctx.thread_idx.x {
                self.output.write(ctx.global_x() as usize, state.count);
                PhaseOutcome::Done
            } else {
                PhaseOutcome::Continue
            }
        }
    }

    #[test]
    fn threads_can_finish_in_different_phases() {
        let cfg = LaunchConfig::new(2u32, 8u32);
        let mut out = vec![0u32; cfg.total_threads() as usize];
        {
            let kernel = StaggeredKernel {
                output: UnsafeSlice::new(&mut out),
            };
            CoopLaunch::run(&cfg, &kernel);
        }
        for block in 0..2usize {
            for t in 0..8usize {
                assert_eq!(out[block * 8 + t], t as u32 + 1);
            }
        }
    }
}
