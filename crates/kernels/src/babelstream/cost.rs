//! Analytic launch cost of the BabelStream operations.

use super::config::BabelStreamConfig;
use gpu_sim::stats::{AccessPattern, FlopCounts};
use gpu_sim::KernelCost;
use vendor_models::heuristics;
use vendor_models::kernel_class::StreamOp;
use vendor_models::Platform;

/// Builds the launch cost of one BabelStream operation under `config` on the
/// given platform (the platform matters only for the Dot grid heuristic).
pub fn stream_cost(platform: &Platform, op: StreamOp, config: &BabelStreamConfig) -> KernelCost {
    let n = config.n as u64;
    let array = config.array_bytes();
    let launch = match op {
        StreamOp::Dot => heuristics::dot_launch(platform.backend, &platform.spec, n),
        _ => heuristics::stream_launch(n),
    };

    let (bytes_read, bytes_written, flops, loads, stores, pattern) = match op {
        StreamOp::Copy => (
            array,
            array,
            FlopCounts::default(),
            1.0,
            1.0,
            AccessPattern::Stream,
        ),
        StreamOp::Mul => (
            array,
            array,
            FlopCounts {
                muls: n,
                ..Default::default()
            },
            1.0,
            1.0,
            AccessPattern::Stream,
        ),
        StreamOp::Add => (
            2 * array,
            array,
            FlopCounts {
                adds: n,
                ..Default::default()
            },
            2.0,
            1.0,
            AccessPattern::Stream,
        ),
        StreamOp::Triad => (
            2 * array,
            array,
            FlopCounts {
                fmas: n,
                ..Default::default()
            },
            2.0,
            1.0,
            AccessPattern::Stream,
        ),
        StreamOp::Dot => {
            // Each element contributes one FMA into shared memory, plus a
            // log2(block) tree reduction per block.
            let threads = launch.total_threads();
            let elems_per_thread = (n as f64 / threads as f64).ceil();
            (
                2 * array,
                launch.num_blocks() * config.precision.size_of() as u64,
                FlopCounts {
                    fmas: n,
                    adds: launch.total_threads(), // reduction adds (≈ block_dim per block)
                    ..Default::default()
                },
                2.0 * elems_per_thread,
                1.0 / launch.threads_per_block() as f64,
                AccessPattern::Reduction,
            )
        }
    };

    let mut builder = KernelCost::builder(op.label(), config.precision, launch, pattern)
        .dram_traffic(bytes_read, bytes_written)
        .flops(flops)
        .loads_stores_per_thread(loads, stores);
    if op == StreamOp::Dot {
        let block = launch.threads_per_block();
        let barriers = (block as f64).log2().ceil() as u64 + 1;
        builder = builder.shared(
            launch.total_threads() * config.precision.size_of() as u64 * 2,
            barriers,
        );
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::Precision;
    use vendor_models::Backend;

    fn platform() -> Platform {
        Platform::portable_h100()
    }

    #[test]
    fn traffic_matches_eq2_multipliers() {
        let config = BabelStreamConfig::paper(Precision::Fp64);
        let array = config.array_bytes();
        for (op, mult) in [
            (StreamOp::Copy, 2),
            (StreamOp::Mul, 2),
            (StreamOp::Add, 3),
            (StreamOp::Triad, 3),
        ] {
            let cost = stream_cost(&platform(), op, &config);
            assert_eq!(cost.total_bytes(), mult * array, "{op}");
        }
        // Dot reads two arrays; its writes (one partial per block) are noise.
        let dot = stream_cost(&platform(), StreamOp::Dot, &config);
        assert!(dot.total_bytes() >= 2 * array);
        assert!(dot.total_bytes() < 2 * array + 1_000_000);
    }

    #[test]
    fn copy_has_no_flops_triad_has_fmas() {
        let config = BabelStreamConfig::paper(Precision::Fp32);
        assert_eq!(
            stream_cost(&platform(), StreamOp::Copy, &config)
                .flops
                .total(),
            0
        );
        let triad = stream_cost(&platform(), StreamOp::Triad, &config);
        assert_eq!(triad.flops.fmas, config.n as u64);
    }

    #[test]
    fn dot_grid_depends_on_backend() {
        let config = BabelStreamConfig::paper(Precision::Fp64);
        let portable = stream_cost(&Platform::portable_h100(), StreamOp::Dot, &config);
        let cuda = stream_cost(&Platform::cuda_h100(false), StreamOp::Dot, &config);
        assert_ne!(portable.launch.num_blocks(), cuda.launch.num_blocks());
        assert_eq!(portable.launch.num_blocks(), 1024);
        let h100 = gpu_spec::presets::h100_nvl();
        assert_eq!(
            cuda.launch.num_blocks(),
            u64::from(h100.topology.num_compute_units * 4)
        );
        assert!(matches!(
            Platform::cuda_h100(false).backend,
            Backend::Cuda { .. }
        ));
    }

    #[test]
    fn dot_has_shared_memory_and_barriers() {
        let config = BabelStreamConfig::paper(Precision::Fp64);
        let dot = stream_cost(&platform(), StreamOp::Dot, &config);
        assert!(dot.shared_bytes > 0);
        assert!(dot.barriers >= 10);
        let copy = stream_cost(&platform(), StreamOp::Copy, &config);
        assert_eq!(copy.shared_bytes, 0);
    }
}
