//! The `Atomic` namespace, mirroring Mojo's `Atomic.fetch_add`.
//!
//! The paper's Hartree–Fock kernel (Listing 5) issues its Fock-matrix updates
//! as `Atomic.fetch_add(fock.ptr.offset(i*natoms + j), value)`. The Rust
//! analogue routes the same operation through [`LayoutTensor`] /
//! [`DeviceBuffer`] so portable kernels read one way regardless of backend.

use crate::tensor::LayoutTensor;
use gpu_sim::memory::DeviceBuffer;

/// Namespace struct for portable atomic operations.
pub struct Atomic;

impl Atomic {
    /// Atomically adds `value` to `tensor` at linear `offset`, returning the
    /// previous value — `Atomic.fetch_add(tensor.ptr.offset(offset), value)`.
    #[inline]
    pub fn fetch_add_f64(tensor: &LayoutTensor<f64>, offset: usize, value: f64) -> f64 {
        tensor.atomic_add_linear(offset, value)
    }

    /// Atomically adds `value` to `tensor` at linear `offset` (FP32 variant).
    #[inline]
    pub fn fetch_add_f32(tensor: &LayoutTensor<f32>, offset: usize, value: f32) -> f32 {
        tensor.atomic_add_linear(offset, value)
    }

    /// Atomically adds `value` to a raw device buffer element.
    #[inline]
    pub fn fetch_add_buffer_f64(buffer: &DeviceBuffer<f64>, index: usize, value: f64) -> f64 {
        buffer.atomic_add(index, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Layout;
    use gpu_sim::Device;
    use gpu_spec::presets;
    use rayon::prelude::*;

    #[test]
    fn fetch_add_f64_under_contention() {
        let dev = Device::new(presets::test_device());
        let natoms = 4usize;
        let fock = LayoutTensor::new(
            dev.alloc::<f64>(natoms * natoms).unwrap(),
            Layout::row_major_2d(natoms, natoms),
        )
        .unwrap();

        let f = &fock;
        (0..10_000usize).into_par_iter().for_each(|q| {
            let i = q % natoms;
            let j = (q / natoms) % natoms;
            Atomic::fetch_add_f64(f, i * natoms + j, 1.0);
        });

        let total: f64 = fock.to_host().iter().sum();
        assert_eq!(total, 10_000.0);
    }

    #[test]
    fn fetch_add_returns_previous() {
        let dev = Device::new(presets::test_device());
        let t = LayoutTensor::new(dev.alloc::<f64>(1).unwrap(), Layout::row_major_1d(1)).unwrap();
        assert_eq!(Atomic::fetch_add_f64(&t, 0, 3.0), 0.0);
        assert_eq!(Atomic::fetch_add_f64(&t, 0, 4.0), 3.0);
        assert_eq!(t.get(0), 7.0);
    }

    #[test]
    fn f32_and_buffer_variants() {
        let dev = Device::new(presets::test_device());
        let t32 = LayoutTensor::new(dev.alloc::<f32>(1).unwrap(), Layout::row_major_1d(1)).unwrap();
        Atomic::fetch_add_f32(&t32, 0, 2.0);
        assert_eq!(t32.get(0), 2.0);

        let buf = dev.alloc::<f64>(2).unwrap();
        Atomic::fetch_add_buffer_f64(&buf, 1, 5.0);
        assert_eq!(buf.read(1), 5.0);
    }
}
