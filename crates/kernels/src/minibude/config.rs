//! miniBUDE run configuration.

use serde::{Deserialize, Serialize};

/// Number of poses beyond which functional execution is sampled rather than
/// exhaustive: the energy of `executed_poses` poses is computed and verified,
/// while the cost model covers the full pose count (the arithmetic per pose is
/// identical, so the sample is representative).
pub const DEFAULT_EXECUTED_POSES: usize = 256;

/// Configuration of one miniBUDE experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiniBudeConfig {
    /// Poses per work-item (the paper sweeps 1..128 in powers of two).
    pub ppwi: u32,
    /// Work-group (thread block) size (the paper uses 8 and 64).
    pub wg: u32,
    /// Number of ligand atoms (26 in bm1).
    pub natlig: usize,
    /// Number of protein atoms (938 in bm1).
    pub natpro: usize,
    /// Total number of poses (65,536 in the paper's runs).
    pub nposes: usize,
    /// Number of poses to execute functionally for validation (must be a
    /// multiple of `ppwi`; 0 disables functional execution).
    pub executed_poses: usize,
    /// Seed for the synthetic deck generator.
    pub seed: u64,
}

impl MiniBudeConfig {
    /// The paper's bm1 configuration for a given PPWI / work-group size.
    pub fn paper(ppwi: u32, wg: u32) -> Self {
        MiniBudeConfig {
            ppwi,
            wg,
            natlig: 26,
            natpro: 938,
            nposes: 65_536,
            executed_poses: DEFAULT_EXECUTED_POSES,
            seed: 0x00b0de,
        }
        .normalised()
    }

    /// A reduced configuration for fast tests: a small deck, few poses, all of
    /// them executed and verified.
    pub fn validation(ppwi: u32, wg: u32) -> Self {
        MiniBudeConfig {
            ppwi,
            wg,
            natlig: 8,
            natpro: 64,
            nposes: 128,
            executed_poses: 128,
            seed: 0x00b0de,
        }
        .normalised()
    }

    /// Rounds `executed_poses` down to a multiple of `ppwi` (and caps it at
    /// `nposes`) so work-items own whole groups.
    pub fn normalised(mut self) -> Self {
        let ppwi = self.ppwi.max(1) as usize;
        self.executed_poses = self.executed_poses.min(self.nposes) / ppwi * ppwi;
        self
    }

    /// Whether functional execution should happen at all.
    pub fn should_execute(&self) -> bool {
        self.executed_poses > 0
    }

    /// The PPWI values the paper sweeps in Figures 6 and 7.
    pub fn paper_ppwi_sweep() -> [u32; 8] {
        [1, 2, 4, 8, 16, 32, 64, 128]
    }

    /// The work-group sizes the paper evaluates.
    pub fn paper_wg_values() -> [u32; 2] {
        [8, 64]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_bm1() {
        let c = MiniBudeConfig::paper(8, 64);
        assert_eq!(c.natlig, 26);
        assert_eq!(c.natpro, 938);
        assert_eq!(c.nposes, 65_536);
        assert_eq!(c.ppwi, 8);
        assert_eq!(c.wg, 64);
        assert!(c.should_execute());
        assert_eq!(c.executed_poses % 8, 0);
    }

    #[test]
    fn executed_poses_is_a_multiple_of_ppwi() {
        let c = MiniBudeConfig {
            ppwi: 48,
            wg: 8,
            natlig: 4,
            natpro: 4,
            nposes: 100,
            executed_poses: 100,
            seed: 1,
        }
        .normalised();
        assert_eq!(c.executed_poses, 96);
    }

    #[test]
    fn sweep_values_match_the_paper() {
        assert_eq!(
            MiniBudeConfig::paper_ppwi_sweep(),
            [1, 2, 4, 8, 16, 32, 64, 128]
        );
        assert_eq!(MiniBudeConfig::paper_wg_values(), [8, 64]);
    }

    #[test]
    fn zero_executed_poses_disables_execution() {
        let mut c = MiniBudeConfig::paper(4, 8);
        c.executed_poses = 0;
        assert!(!c.normalised().should_execute());
    }
}
