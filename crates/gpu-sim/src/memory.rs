//! Simulated device memory: a capacity-tracked pool of typed buffers.
//!
//! Mirrors the paper's memory model (Listing 1): the host creates a
//! `DeviceContext`, enqueues buffer creations, copies data in, launches
//! kernels over the buffers, and copies results back. Here [`Device`] plays
//! the role of the context's device and [`DeviceBuffer`] the role of a device
//! allocation. Buffers use GPU global-memory semantics: any simulated thread
//! may read or write any element without synchronisation (see
//! [`crate::slice::UnsafeSlice`] for the safety contract).

use crate::atomics;
use crate::error::{SimError, SimResult};
use gpu_spec::{GpuSpec, Precision};
use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::sync::Arc;

/// Scalar element types that can live in simulated device memory.
pub trait DeviceScalar:
    Copy + Send + Sync + Default + PartialEq + std::fmt::Debug + 'static
{
    /// Size of one element in bytes.
    const SIZE_BYTES: usize;
    /// The floating-point precision this type corresponds to, if any.
    fn precision() -> Option<Precision>;
}

impl DeviceScalar for f32 {
    const SIZE_BYTES: usize = 4;
    fn precision() -> Option<Precision> {
        Some(Precision::Fp32)
    }
}

impl DeviceScalar for f64 {
    const SIZE_BYTES: usize = 8;
    fn precision() -> Option<Precision> {
        Some(Precision::Fp64)
    }
}

impl DeviceScalar for i32 {
    const SIZE_BYTES: usize = 4;
    fn precision() -> Option<Precision> {
        None
    }
}

impl DeviceScalar for u32 {
    const SIZE_BYTES: usize = 4;
    fn precision() -> Option<Precision> {
        None
    }
}

impl DeviceScalar for u64 {
    const SIZE_BYTES: usize = 8;
    fn precision() -> Option<Precision> {
        None
    }
}

#[derive(Debug)]
struct DeviceInner {
    spec: GpuSpec,
    allocated_bytes: Mutex<u64>,
}

/// A simulated GPU device: owns the hardware description and tracks how much
/// of the device memory is currently allocated.
#[derive(Clone, Debug)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

impl Device {
    /// Creates a device from a hardware description.
    pub fn new(spec: GpuSpec) -> Self {
        Device {
            inner: Arc::new(DeviceInner {
                spec,
                allocated_bytes: Mutex::new(0),
            }),
        }
    }

    /// The hardware description this device simulates.
    pub fn spec(&self) -> &GpuSpec {
        &self.inner.spec
    }

    /// Bytes of device memory currently allocated.
    pub fn allocated_bytes(&self) -> u64 {
        *self.inner.allocated_bytes.lock()
    }

    /// Bytes of device memory still available.
    pub fn available_bytes(&self) -> u64 {
        self.inner.spec.memory_bytes - self.allocated_bytes()
    }

    /// Allocates an uninitialised (zero-filled) buffer of `len` elements,
    /// mirroring `ctx.enqueue_create_buffer[dtype](len)`.
    pub fn alloc<T: DeviceScalar>(&self, len: usize) -> SimResult<DeviceBuffer<T>> {
        let bytes = (len * T::SIZE_BYTES) as u64;
        {
            let mut allocated = self.inner.allocated_bytes.lock();
            let available = self.inner.spec.memory_bytes - *allocated;
            if bytes > available {
                return Err(SimError::OutOfMemory {
                    requested: bytes,
                    available,
                });
            }
            *allocated += bytes;
        }
        let cells: Box<[UnsafeCell<T>]> = (0..len).map(|_| UnsafeCell::new(T::default())).collect();
        Ok(DeviceBuffer {
            storage: Arc::new(BufferStorage {
                cells,
                bytes,
                device: Arc::clone(&self.inner),
            }),
        })
    }

    /// Allocates a buffer and copies `data` into it (host-to-device transfer).
    pub fn alloc_from_host<T: DeviceScalar>(&self, data: &[T]) -> SimResult<DeviceBuffer<T>> {
        let buf = self.alloc::<T>(data.len())?;
        buf.copy_from_host(data)?;
        Ok(buf)
    }
}

struct BufferStorage<T: DeviceScalar> {
    cells: Box<[UnsafeCell<T>]>,
    bytes: u64,
    device: Arc<DeviceInner>,
}

// SAFETY: concurrent element access follows GPU global-memory semantics; the
// disjointness obligation is documented on `UnsafeSlice` and `DeviceBuffer`.
unsafe impl<T: DeviceScalar> Sync for BufferStorage<T> {}
unsafe impl<T: DeviceScalar> Send for BufferStorage<T> {}

impl<T: DeviceScalar> Drop for BufferStorage<T> {
    fn drop(&mut self) {
        let mut allocated = self.device.allocated_bytes.lock();
        *allocated = allocated.saturating_sub(self.bytes);
    }
}

impl<T: DeviceScalar> std::fmt::Debug for BufferStorage<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferStorage")
            .field("len", &self.cells.len())
            .field("bytes", &self.bytes)
            .finish()
    }
}

/// A typed allocation in simulated device memory.
///
/// Cloning a `DeviceBuffer` clones the *handle* (like copying a device
/// pointer), not the data. Reads and writes take `&self` and may be issued
/// concurrently from many simulated threads; writers to the same element must
/// not race, exactly as on hardware.
#[derive(Clone, Debug)]
pub struct DeviceBuffer<T: DeviceScalar> {
    storage: Arc<BufferStorage<T>>,
}

impl<T: DeviceScalar> DeviceBuffer<T> {
    /// Number of elements in the buffer.
    pub fn len(&self) -> usize {
        self.storage.cells.len()
    }

    /// Whether the buffer holds zero elements.
    pub fn is_empty(&self) -> bool {
        self.storage.cells.is_empty()
    }

    /// Size of the allocation in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.storage.bytes
    }

    /// Reads element `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds (device-side bounds are always checked
    /// by the simulator; hardware would silently corrupt memory instead).
    #[inline]
    pub fn read(&self, i: usize) -> T {
        assert!(
            i < self.len(),
            "device read out of bounds: {} >= {}",
            i,
            self.len()
        );
        unsafe { *self.storage.cells[i].get() }
    }

    /// Writes element `i`. Concurrent writers to distinct elements are
    /// allowed; racing on one element is a bug in the kernel.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn write(&self, i: usize, value: T) {
        assert!(
            i < self.len(),
            "device write out of bounds: {} >= {}",
            i,
            self.len()
        );
        unsafe { *self.storage.cells[i].get() = value }
    }

    /// Fills the whole buffer with `value`.
    pub fn fill(&self, value: T) {
        for i in 0..self.len() {
            self.write(i, value);
        }
    }

    /// Copies host data into the buffer (host-to-device transfer).
    pub fn copy_from_host(&self, data: &[T]) -> SimResult<()> {
        if data.len() != self.len() {
            return Err(SimError::SizeMismatch {
                expected: self.len(),
                actual: data.len(),
            });
        }
        for (i, v) in data.iter().enumerate() {
            self.write(i, *v);
        }
        Ok(())
    }

    /// Copies the buffer back to the host (device-to-host transfer).
    pub fn copy_to_host(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.read(i)).collect()
    }

    /// Raw pointer to element `i`, used by the atomic operations below.
    #[inline]
    fn element_ptr(&self, i: usize) -> *mut T {
        assert!(
            i < self.len(),
            "device atomic out of bounds: {} >= {}",
            i,
            self.len()
        );
        self.storage.cells[i].get()
    }
}

impl DeviceBuffer<f64> {
    /// Atomically adds `value` to element `i` and returns the previous value,
    /// mirroring Mojo's `Atomic.fetch_add` / CUDA's `atomicAdd` on doubles.
    #[inline]
    pub fn atomic_add(&self, i: usize, value: f64) -> f64 {
        // SAFETY: pointer is valid and 8-aligned; atomics::fetch_add_f64 only
        // issues atomic operations on it.
        unsafe { atomics::fetch_add_f64(self.element_ptr(i), value) }
    }
}

impl DeviceBuffer<f32> {
    /// Atomically adds `value` to element `i` and returns the previous value.
    #[inline]
    pub fn atomic_add(&self, i: usize, value: f32) -> f32 {
        // SAFETY: pointer is valid and 4-aligned.
        unsafe { atomics::fetch_add_f32(self.element_ptr(i), value) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::presets;

    fn device() -> Device {
        Device::new(presets::test_device())
    }

    #[test]
    fn alloc_and_roundtrip() {
        let dev = device();
        let buf = dev.alloc_from_host(&[1.0f64, 2.0, 3.0]).unwrap();
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.size_bytes(), 24);
        assert_eq!(buf.copy_to_host(), vec![1.0, 2.0, 3.0]);
        assert!(!buf.is_empty());
    }

    #[test]
    fn alloc_tracks_capacity_and_frees_on_drop() {
        let dev = device();
        assert_eq!(dev.allocated_bytes(), 0);
        {
            let _a = dev.alloc::<f64>(1024).unwrap();
            let _b = dev.alloc::<f32>(1024).unwrap();
            assert_eq!(dev.allocated_bytes(), 8 * 1024 + 4 * 1024);
        }
        assert_eq!(dev.allocated_bytes(), 0);
    }

    #[test]
    fn clone_shares_storage_and_counts_once() {
        let dev = device();
        let a = dev.alloc::<f64>(16).unwrap();
        let b = a.clone();
        b.write(5, 7.0);
        assert_eq!(a.read(5), 7.0);
        assert_eq!(dev.allocated_bytes(), 128);
        drop(a);
        assert_eq!(dev.allocated_bytes(), 128);
        drop(b);
        assert_eq!(dev.allocated_bytes(), 0);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let dev = device();
        let too_big = (dev.spec().memory_bytes / 8 + 1) as usize;
        let err = dev.alloc::<f64>(too_big).unwrap_err();
        match err {
            SimError::OutOfMemory { requested, .. } => assert!(requested > dev.spec().memory_bytes),
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
    }

    #[test]
    fn copy_size_mismatch_is_reported() {
        let dev = device();
        let buf = dev.alloc::<f32>(4).unwrap();
        assert!(matches!(
            buf.copy_from_host(&[1.0, 2.0]),
            Err(SimError::SizeMismatch {
                expected: 4,
                actual: 2
            })
        ));
    }

    #[test]
    fn fill_sets_every_element() {
        let dev = device();
        let buf = dev.alloc::<u32>(100).unwrap();
        buf.fill(42);
        assert!(buf.copy_to_host().iter().all(|&v| v == 42));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn read_out_of_bounds_panics() {
        let dev = device();
        let buf = dev.alloc::<f64>(2).unwrap();
        let _ = buf.read(2);
    }

    #[test]
    fn atomic_add_f64_accumulates() {
        let dev = device();
        let buf = dev.alloc::<f64>(1).unwrap();
        use rayon::prelude::*;
        (0..1000).into_par_iter().for_each(|_| {
            buf.atomic_add(0, 1.0);
        });
        assert_eq!(buf.read(0), 1000.0);
    }

    #[test]
    fn atomic_add_f32_accumulates() {
        let dev = device();
        let buf = dev.alloc::<f32>(1).unwrap();
        use rayon::prelude::*;
        (0..1000).into_par_iter().for_each(|_| {
            buf.atomic_add(0, 0.5);
        });
        assert_eq!(buf.read(0), 500.0);
    }

    #[test]
    fn scalar_sizes_and_precisions() {
        assert_eq!(f32::SIZE_BYTES, 4);
        assert_eq!(f64::SIZE_BYTES, 8);
        assert_eq!(f32::precision(), Some(Precision::Fp32));
        assert_eq!(f64::precision(), Some(Precision::Fp64));
        assert_eq!(i32::precision(), None);
        assert_eq!(u64::precision(), None);
    }
}
