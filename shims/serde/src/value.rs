//! The dynamic value tree serialisable types convert through.

use std::fmt;

/// A dynamically typed serialisation value (the shim's `serde_json::Value`
/// analogue). Objects preserve insertion order so generated JSON is stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the encoding of `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map of named fields.
    Object(Vec<(String, Value)>),
}

impl crate::Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl crate::Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Serialisation / deserialisation error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a message.
    pub fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}
