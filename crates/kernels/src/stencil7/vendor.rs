//! Vendor-baseline (CUDA/HIP style) seven-point stencil.
//!
//! The paper's baselines come from AMD's lab-notes HIP code, with the CUDA
//! version "translated … using the same structure as AMD's HIP code". They do
//! not use a layout-tensor abstraction: the kernel receives raw device
//! pointers and does its own index arithmetic. This implementation mirrors
//! that structure — raw `DeviceBuffer`s, manual `(i*ny + j)*nz + k` indexing,
//! and the simulator's launch API used directly rather than through the
//! portable `DeviceContext`.

use super::config::StencilConfig;
use super::cost::stencil_cost;
use crate::cache;
use crate::common::{compare_with_reference, Verification, WorkloadRun};
use crate::real::Real;
use gpu_sim::{istr, istr_fmt, launch_flat, PooledVec, SimError};
use vendor_models::{heuristics, KernelClass, Platform};

/// Runs the vendor-baseline stencil on `platform` (CUDA on NVIDIA, HIP on AMD).
pub fn run_vendor(platform: &Platform, config: &StencilConfig) -> Result<WorkloadRun, SimError> {
    let cost = stencil_cost(config);
    let class = KernelClass::Stencil7 {
        precision: config.precision,
    };
    let profile = platform.execution_profile(&class);
    let timing = cache::timing_model(platform).estimate(&cost, &profile);

    let verification = if config.should_execute() {
        match config.precision {
            gpu_spec::Precision::Fp32 => execute::<f32>(platform, config)?,
            gpu_spec::Precision::Fp64 => execute::<f64>(platform, config)?,
        }
    } else {
        Verification::Skipped {
            reason: istr_fmt(format_args!(
                "L = {} exceeds the functional-execution limit; cost model only",
                config.l
            )),
        }
    };

    Ok(WorkloadRun {
        backend: profile.backend.clone(),
        device: istr(&platform.spec.name),
        kernel: istr("laplacian"),
        cost,
        profile,
        timing,
        verification,
    })
}

fn execute<T: Real + cache::StencilGridCache>(
    platform: &Platform,
    config: &StencilConfig,
) -> Result<Verification, SimError> {
    let l = config.l;
    let (invhx2, invhy2, invhz2, invhxyz2) = config.coefficients();
    let u_host = T::cached_stencil_grid(config);

    let device = cache::device(platform);
    let d_u = device.alloc_from_host(&u_host)?;
    let d_f = device.alloc::<T>(l * l * l)?;

    let launch = heuristics::stencil_launch(l as u32, config.block_x);
    launch.validate(&platform.spec)?;

    let (cx, cy, cz, cc) = (
        T::from_f64(invhx2),
        T::from_f64(invhy2),
        T::from_f64(invhz2),
        T::from_f64(invhxyz2),
    );
    let (u, f) = (d_u.clone(), d_f.clone());
    // CUDA/HIP-style kernel body: raw pointers, manual linearisation.
    launch_flat(&launch, move |t| {
        let k = t.global_x() as usize;
        let j = t.global_y() as usize;
        let i = t.global_z() as usize;
        if i > 0 && i < l - 1 && j > 0 && j < l - 1 && k > 0 && k < l - 1 {
            let at = |ii: usize, jj: usize, kk: usize| (ii * l + jj) * l + kk;
            let value = u.read(at(i, j, k)) * cc
                + (u.read(at(i - 1, j, k)) + u.read(at(i + 1, j, k))) * cx
                + (u.read(at(i, j - 1, k)) + u.read(at(i, j + 1, k))) * cy
                + (u.read(at(i, j, k - 1)) + u.read(at(i, j, k + 1))) * cz;
            f.write(at(i, j, k), value);
        }
    });

    let expected = cache::stencil_reference(config);
    let mut actual: PooledVec<T> = PooledVec::new();
    d_f.copy_to_host_into(&mut actual);
    match compare_with_reference(&actual, &expected, T::tolerance()) {
        Ok(max_abs_error) => Ok(Verification::Passed { max_abs_error }),
        Err(msg) => Err(SimError::InvalidParameter(format!(
            "vendor stencil verification failed: {msg}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::Precision;

    #[test]
    fn cuda_stencil_matches_reference() {
        let config = StencilConfig::validation(32, Precision::Fp64);
        let run = run_vendor(&Platform::cuda_h100(false), &config).unwrap();
        assert!(run.verification.is_verified());
        assert_eq!(run.backend, "CUDA");
    }

    #[test]
    fn hip_stencil_matches_reference_fp32() {
        let config = StencilConfig::validation(24, Precision::Fp32);
        let run = run_vendor(&Platform::hip_mi300a(false), &config).unwrap();
        assert!(run.verification.is_verified());
        assert_eq!(run.backend, "HIP");
    }

    #[test]
    fn cuda_duration_is_close_to_table2() {
        // Table 2: CUDA FP64 L=512 duration 0.96 ms; FP32 L=1024 7.21 ms.
        let run = run_vendor(
            &Platform::cuda_h100(false),
            &StencilConfig::paper(512, Precision::Fp64),
        )
        .unwrap();
        assert!(
            (run.millis() - 0.96).abs() < 0.2,
            "expected ≈0.96 ms, got {:.3}",
            run.millis()
        );
        let run32 = run_vendor(
            &Platform::cuda_h100(false),
            &StencilConfig::paper(1024, Precision::Fp32),
        )
        .unwrap();
        assert!(
            (run32.millis() - 7.21).abs() < 1.0,
            "expected ≈7.21 ms, got {:.3}",
            run32.millis()
        );
    }

    #[test]
    fn portable_and_vendor_produce_identical_numerics() {
        let config = StencilConfig::validation(20, Precision::Fp64);
        let a = super::super::run_portable(&Platform::portable_h100(), &config).unwrap();
        let b = run_vendor(&Platform::cuda_h100(false), &config).unwrap();
        // Both verified against the same reference; the outputs are therefore
        // identical up to the verification tolerance.
        assert!(a.verification.is_verified());
        assert!(b.verification.is_verified());
    }
}
