//! Regenerates the paper's full evaluation: every table and figure, printed
//! to the console and exported as CSV under `target/experiments/`.
//!
//! Run with `cargo run --release --example portability_report`.
//! Pass experiment ids (e.g. `table4 fig6`) to regenerate a subset.

use mojo_hpc::report::{all_experiments, run_experiment, ExperimentId};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reports = if args.is_empty() {
        all_experiments()
    } else {
        args.iter()
            .map(|arg| {
                let id: ExperimentId = arg.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    eprintln!(
                        "known ids: {}",
                        ExperimentId::ALL
                            .iter()
                            .map(|i| i.as_str())
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    std::process::exit(2);
                });
                run_experiment(id)
            })
            .collect()
    };

    for report in reports {
        println!("{}", report.render());
        match report.write_csv_files() {
            Ok(paths) => {
                for path in paths {
                    println!("  [csv] {}", path.display());
                }
            }
            Err(err) => eprintln!("  failed to write CSV for {}: {err}", report.id),
        }
        println!();
    }
}
