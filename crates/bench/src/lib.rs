//! Shared plumbing for the benchmark harness.
//!
//! Every bench target regenerates one paper table or figure (printing the
//! same rows/series the paper reports and exporting CSV under
//! `target/experiments/`), then runs a small Criterion measurement of the
//! underlying simulated-kernel driver so `cargo bench` also reports how long
//! the reproduction itself takes.
//!
//! # Bench JSON schema
//!
//! Besides the console report, every benchmark group exports a
//! machine-readable record to **`target/bench/<group>.json`** (the directory
//! honours `CARGO_TARGET_DIR`). The schema is stable across PRs so the files
//! can be archived per commit and diffed/plotted as a performance
//! trajectory:
//!
//! ```json
//! {
//!   "group": "fig4_babelstream",
//!   "benchmarks": [
//!     {
//!       "id": "portable_triad",
//!       "samples": 10,
//!       "mean_ns": 1234567.8,
//!       "min_ns": 1200000,
//!       "max_ns": 1300000,
//!       "throughput": { "kind": "bytes", "amount": 8388608,
//!                       "per_sec": 6794772480.0 }
//!     }
//!   ],
//!   "counters": [
//!     { "name": "pool_checkouts", "value": 312 },
//!     { "name": "pool_hits", "value": 308 },
//!     { "name": "pool_misses", "value": 4 },
//!     { "name": "pool_recycled_bytes", "value": 50331648 },
//!     { "name": "pool_fresh_bytes", "value": 655360 }
//!   ]
//! }
//! ```
//!
//! * `samples` — number of timed iterations (1 under `--test`/`--smoke`);
//! * `mean_ns` / `min_ns` / `max_ns` — wall-clock statistics per iteration;
//! * `throughput` — present when the group declared one via
//!   `criterion::Throughput`: `kind` is `"elements"` or `"bytes"`, `amount`
//!   is the declared work per iteration, `per_sec` is `amount / mean`;
//!   `null` otherwise;
//! * `counters` — buffer-pool telemetry over the whole group, recorded by
//!   [`record_pool_counters`] as the delta of [`gpu_sim::pool`]'s process
//!   counters across the target's runs (records predating the key simply
//!   lack it; the diff lane treats it as absent).
//!
//! CI runs `cargo bench -- --smoke` (single-sample sweep) and uploads the
//! resulting `target/bench/*.json` as the build's bench artifact.

pub mod diff;
pub mod trajectory;

use criterion::BenchmarkGroup;
use experiment_report::{run_experiment, ExperimentId};
use gpu_sim::PoolStats;

/// Snapshots the process-wide buffer-pool counters; pair with
/// [`record_pool_counters`] around a bench group's runs.
pub fn pool_snapshot() -> PoolStats {
    gpu_sim::pool::stats()
}

/// Records the buffer-pool activity since `before` on `group` as the
/// `pool_*` counters of its JSON record (schema in the crate docs). Call
/// right before `group.finish()` so the delta covers every benchmark of the
/// group, warm-up and timed runs alike.
pub fn record_pool_counters(group: &mut BenchmarkGroup<'_>, before: &PoolStats) {
    let delta = gpu_sim::pool::stats().since(before);
    group.counter("pool_checkouts", delta.checkouts);
    group.counter("pool_hits", delta.hits);
    group.counter("pool_misses", delta.misses);
    group.counter("pool_recycled_bytes", delta.recycled_bytes);
    group.counter("pool_fresh_bytes", delta.fresh_bytes);
}

/// Regenerates one experiment, prints it, and writes its CSV files.
pub fn reproduce(id: ExperimentId) {
    let report = run_experiment(id);
    println!("{}", report.render());
    match report.write_csv_files() {
        Ok(paths) => {
            for path in paths {
                println!("  [csv] {}", path.display());
            }
        }
        Err(err) => eprintln!("  failed to write CSV for {}: {err}", report.id),
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduce_prints_without_panicking() {
        reproduce(ExperimentId::Table1);
    }
}
