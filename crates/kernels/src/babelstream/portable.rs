//! Portable (Mojo-style) BabelStream implementation — paper Listing 3.
//!
//! Copy, Mul, Add and Triad are one-line flat kernels over `LayoutTensor`s;
//! Dot accumulates grid-strided partial products into block shared memory and
//! tree-reduces them with barriers (expressed through the bulk-synchronous
//! [`CoopKernel`] phases), then the host sums the per-block partials.

use super::config::{BabelStreamConfig, INIT_A, INIT_B, INIT_C, SCALAR};
use super::cost::stream_cost;
use super::reference::expected_values;
use crate::cache;
use crate::common::{Verification, WorkloadRun};
use crate::real::Real;
use crate::simd::{self, Lane, LanePolicy};
use gpu_sim::{istr, Dim3, SimError};
use portable_kernel::prelude::*;
use rayon::prelude::*;
use vendor_models::kernel_class::StreamOp;
use vendor_models::{heuristics, KernelClass, Platform};

/// The crossover-table key of one stream operation.
pub fn lane_kernel_key(op: StreamOp) -> &'static str {
    match op {
        StreamOp::Copy => simd::KERNEL_COPY,
        StreamOp::Mul => simd::KERNEL_MUL,
        StreamOp::Add => simd::KERNEL_ADD,
        StreamOp::Triad => simd::KERNEL_TRIAD,
        StreamOp::Dot => simd::KERNEL_DOT,
    }
}

/// Runs one BabelStream operation with the portable backend under the
/// process-wide lane policy.
pub fn run_portable(
    platform: &Platform,
    op: StreamOp,
    config: &BabelStreamConfig,
) -> Result<WorkloadRun, SimError> {
    run_portable_lane(platform, op, config, simd::process_policy())
}

/// Runs one BabelStream operation with the portable backend under an explicit
/// lane policy. The lane only affects the host-side verification arithmetic
/// (the Dot partial-sum reduction and the constant scans); the deterministic
/// lane reproduces the golden bytes exactly.
pub fn run_portable_lane(
    platform: &Platform,
    op: StreamOp,
    config: &BabelStreamConfig,
    policy: LanePolicy,
) -> Result<WorkloadRun, SimError> {
    let cost = stream_cost(platform, op, config);
    let class = KernelClass::Stream {
        op,
        precision: config.precision,
    };
    let profile = platform.execution_profile(&class);
    let timing = cache::timing_model(platform).estimate(&cost, &profile);
    let lane = simd::resolve(policy, lane_kernel_key(op), config.n as u64);

    let verification = if config.validate {
        match config.precision {
            gpu_spec::Precision::Fp32 => execute::<f32>(platform, op, config, lane)?,
            gpu_spec::Precision::Fp64 => execute::<f64>(platform, op, config, lane)?,
        }
    } else {
        Verification::Skipped {
            reason: istr("functional execution disabled for this configuration"),
        }
    };

    Ok(WorkloadRun {
        backend: profile.backend.clone(),
        device: istr(&platform.spec.name),
        kernel: istr(op.label()),
        cost,
        profile,
        timing,
        verification,
    })
}

/// The Dot kernel expressed as bulk-synchronous phases (each phase boundary is
/// a `barrier()` in the paper's Listing 3).
struct DotKernel<T: Real> {
    a: LayoutTensor<T>,
    b: LayoutTensor<T>,
    sums: LayoutTensor<T>,
    n: usize,
}

impl<T: Real> CoopKernel for DotKernel<T> {
    type Shared = T;
    type ThreadState = ();

    fn shared_len(&self, block_dim: Dim3) -> usize {
        block_dim.total() as usize
    }

    fn phase(
        &self,
        phase: usize,
        ctx: ThreadCtx,
        _state: &mut (),
        shared: &mut [T],
    ) -> PhaseOutcome {
        let tid = ctx.thread_idx.x as usize;
        let block_size = ctx.block_dim.x as usize;
        if phase == 0 {
            // Grid-stride accumulation into the shared tile.
            let mut acc = T::from_f64(0.0);
            let mut i = ctx.global_x() as usize;
            let stride = ctx.threads_in_grid_x() as usize;
            while i < self.n {
                acc += self.a.get(i) * self.b.get(i);
                i += stride;
            }
            shared[tid] = acc;
            return PhaseOutcome::Continue;
        }
        // Tree reduction: offset halves every phase (barrier between steps).
        let offset = block_size >> phase;
        if offset == 0 {
            if tid == 0 {
                self.sums.set(ctx.block_idx.x as usize, shared[0]);
            }
            return PhaseOutcome::Done;
        }
        if tid < offset {
            let other = shared[tid + offset];
            shared[tid] += other;
        }
        PhaseOutcome::Continue
    }
}

fn execute<T: Real>(
    platform: &Platform,
    op: StreamOp,
    config: &BabelStreamConfig,
    lane: Lane,
) -> Result<Verification, SimError> {
    let n = config.n;
    let ctx = DeviceContext::from_device(cache::device(platform));
    let layout = Layout::row_major_1d(n);
    let a = LayoutTensor::new(ctx.enqueue_create_buffer::<T>(n)?, layout)?;
    let b = LayoutTensor::new(ctx.enqueue_create_buffer::<T>(n)?, layout)?;
    let c = LayoutTensor::new(ctx.enqueue_create_buffer::<T>(n)?, layout)?;
    a.fill(T::from_f64(INIT_A));
    b.fill(T::from_f64(INIT_B));
    c.fill(T::from_f64(INIT_C));
    let scalar = T::from_f64(SCALAR);

    let launch = heuristics::stream_launch(n as u64);
    let expected = expected_values(op, config);

    let observed: f64 = match op {
        StreamOp::Copy => {
            let (ak, ck) = (a.clone(), c.clone());
            ctx.enqueue_function(launch, move |t| {
                let i = t.global_x() as usize;
                if i < n {
                    ck.set(i, ak.get(i));
                }
            })?;
            verify_constant(&c, expected, n, lane)?
        }
        StreamOp::Mul => {
            let (bk, ck) = (b.clone(), c.clone());
            ctx.enqueue_function(launch, move |t| {
                let i = t.global_x() as usize;
                if i < n {
                    bk.set(i, scalar * ck.get(i));
                }
            })?;
            verify_constant(&b, expected, n, lane)?
        }
        StreamOp::Add => {
            let (ak, bk, ck) = (a.clone(), b.clone(), c.clone());
            ctx.enqueue_function(launch, move |t| {
                let i = t.global_x() as usize;
                if i < n {
                    ck.set(i, ak.get(i) + bk.get(i));
                }
            })?;
            verify_constant(&c, expected, n, lane)?
        }
        StreamOp::Triad => {
            let (ak, bk, ck) = (a.clone(), b.clone(), c.clone());
            ctx.enqueue_function(launch, move |t| {
                let i = t.global_x() as usize;
                if i < n {
                    ak.set(i, bk.get(i) + scalar * ck.get(i));
                }
            })?;
            verify_constant(&a, expected, n, lane)?
        }
        StreamOp::Dot => {
            let dot_launch = heuristics::dot_launch(platform.backend, &platform.spec, n as u64);
            let num_blocks = dot_launch.num_blocks() as usize;
            let sums = LayoutTensor::new(
                ctx.enqueue_create_buffer::<T>(num_blocks)?,
                Layout::row_major_1d(num_blocks),
            )?;
            let kernel = DotKernel {
                a: a.clone(),
                b: b.clone(),
                sums: sums.clone(),
                n,
            };
            ctx.enqueue_cooperative(dot_launch, &kernel)?;
            // Host-side reduction of the per-block partials, reading straight
            // from the device buffer. Both lanes are bitwise-stable across
            // thread counts; the SIMD lane folds each chunk with four
            // independent accumulators (a fixed reassociation within the
            // documented 1e-12 relative bound) before the same pairwise tree.
            let partials = &sums;
            let total: f64 = match lane {
                Lane::Deterministic => (0..num_blocks)
                    .into_par_iter()
                    .map(|i| partials.get(i).to_f64())
                    .sum(),
                Lane::Simd => (0..num_blocks)
                    .into_par_iter()
                    .map(|i| partials.get(i).to_f64())
                    .sum_unrolled(),
            };
            (total - expected).abs() / expected.abs().max(1.0)
        }
    };

    ctx.synchronize();
    if observed <= T::tolerance() {
        Ok(Verification::Passed {
            max_abs_error: observed,
        })
    } else {
        Err(SimError::InvalidParameter(format!(
            "BabelStream {op} verification failed: relative error {observed:.3e}"
        )))
    }
}

/// Checks that every element of `tensor` equals `expected`; returns the
/// maximum relative error. The scan runs on the pool; the SIMD lane scans
/// each chunk with four independent max-accumulators, which is exactly equal
/// to the scalar scan because `max` is order-independent.
fn verify_constant<T: Real>(
    tensor: &LayoutTensor<T>,
    expected: f64,
    n: usize,
    lane: Lane,
) -> Result<f64, SimError> {
    let max_rel = match lane {
        Lane::Deterministic => (0..n)
            .into_par_iter()
            .map(|i| {
                let v = tensor.get(i).to_f64();
                (v - expected).abs() / expected.abs().max(1.0)
            })
            .reduce(|| 0.0f64, f64::max),
        Lane::Simd => {
            let nchunks = n.div_ceil(rayon::REDUCE_CHUNK);
            (0..nchunks)
                .into_par_iter()
                .map(|chunk| {
                    let start = chunk * rayon::REDUCE_CHUNK;
                    let end = (start + rayon::REDUCE_CHUNK).min(n);
                    simd::max_rel_err_chunk(|i| tensor.get(i).to_f64(), start, end, expected)
                })
                .reduce(|| 0.0f64, f64::max)
        }
    };
    Ok(max_rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::Precision;

    #[test]
    fn every_op_verifies_in_both_precisions() {
        for precision in [Precision::Fp32, Precision::Fp64] {
            let config = BabelStreamConfig::validation(1 << 13, precision);
            for op in StreamOp::ALL {
                let run = run_portable(&Platform::portable_h100(), op, &config).unwrap();
                assert!(run.verification.is_verified(), "{op} {precision}");
            }
        }
    }

    #[test]
    fn dot_reduction_is_numerically_exact_for_uniform_data() {
        let config = BabelStreamConfig::validation(10_000, Precision::Fp64);
        let run = run_portable(&Platform::portable_mi300a(), StreamOp::Dot, &config).unwrap();
        match run.verification {
            Verification::Passed { max_abs_error } => assert!(max_abs_error < 1e-10),
            other => panic!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn skipping_validation_still_times_the_kernel() {
        let config = BabelStreamConfig::paper(Precision::Fp64);
        let run = run_portable(&Platform::portable_h100(), StreamOp::Triad, &config).unwrap();
        assert!(!run.verification.is_verified());
        assert!(run.millis() > 0.1 && run.millis() < 1.0);
    }
}
