//! Preset device descriptions for the GPUs in the paper's Table 1, plus a
//! small generic device used by unit tests.
//!
//! The headline figures (bandwidth, FP32/FP64 peaks, memory capacity) are the
//! exact values printed in Table 1 / Table 6 of the paper. The architectural
//! detail (SM/CU counts, caches, register files) comes from the public vendor
//! datasheets for the same parts and only influences second-order effects in
//! the simulator (occupancy, cache-level arithmetic intensity).

use crate::memory::{CacheLevel, LevelKind, MemoryHierarchy};
use crate::spec::{ComputeTopology, GpuSpec};
use crate::vendor::Vendor;
use crate::GIB;

/// Identifier for one of the built-in device presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuPreset {
    /// NVIDIA H100 NVL with 94 GB HBM3 (paper Table 1, row 1).
    H100Nvl,
    /// AMD MI300A with 128 GB HBM3 (paper Table 1, row 2).
    Mi300a,
    /// A deliberately small generic device for fast, deterministic tests.
    TestDevice,
}

impl GpuPreset {
    /// Builds the full [`GpuSpec`] for this preset.
    pub fn spec(&self) -> GpuSpec {
        match self {
            GpuPreset::H100Nvl => h100_nvl(),
            GpuPreset::Mi300a => mi300a(),
            GpuPreset::TestDevice => test_device(),
        }
    }
}

/// All presets that correspond to real hardware evaluated in the paper.
pub fn all_presets() -> Vec<GpuSpec> {
    vec![h100_nvl(), mi300a()]
}

/// NVIDIA H100 NVL — 94 GB. Table 1: 3,900 GB/s, 60.0 FP32 TFLOP/s, 30.0 FP64 TFLOP/s.
pub fn h100_nvl() -> GpuSpec {
    GpuSpec {
        name: "NVIDIA H100 NVL - 94 GB".to_string(),
        vendor: Vendor::Nvidia,
        memory_bytes: 94 * GIB,
        bandwidth_gbs: 3_900.0,
        fp32_tflops: 60.0,
        fp64_tflops: 30.0,
        topology: ComputeTopology {
            num_compute_units: 132,
            max_threads_per_unit: 2048,
            max_threads_per_block: 1024,
            registers_per_unit: 65_536,
            simt_width: 32,
            clock_ghz: 1.785,
        },
        memory: MemoryHierarchy {
            l1: CacheLevel {
                name: LevelKind::L1,
                capacity_bytes: 132 * 256 * 1024,
                bandwidth_gbs: 33_000.0,
                latency_ns: 30.0,
                line_bytes: 128,
            },
            l2: CacheLevel {
                name: LevelKind::L2,
                capacity_bytes: 50 * 1024 * 1024,
                bandwidth_gbs: 12_000.0,
                latency_ns: 200.0,
                line_bytes: 128,
            },
            hbm: CacheLevel {
                name: LevelKind::Hbm,
                capacity_bytes: 94 * GIB,
                bandwidth_gbs: 3_900.0,
                latency_ns: 550.0,
                line_bytes: 128,
            },
            shared_per_block_bytes: 227 * 1024 / 2, // 113 KiB usable per block on Hopper
        },
        // Sustained FP64 global-atomic rate under the Hartree-Fock contention
        // pattern, calibrated from the paper's Table 4 (CUDA, 256 atoms,
        // ngauss = 3: ~3.25e9 atomic updates in 472 ms).
        atomic_fp64_gups: 6.9,
    }
}

/// AMD MI300A — 128 GB HBM3. Table 1: 5,300 GB/s, 122.6 FP32 TFLOP/s, 61.3 FP64 TFLOP/s.
pub fn mi300a() -> GpuSpec {
    GpuSpec {
        name: "AMD MI300A - 128 GB HBM3".to_string(),
        vendor: Vendor::Amd,
        memory_bytes: 128 * GIB,
        bandwidth_gbs: 5_300.0,
        fp32_tflops: 122.6,
        fp64_tflops: 61.3,
        topology: ComputeTopology {
            num_compute_units: 228,
            max_threads_per_unit: 2048,
            max_threads_per_block: 1024,
            registers_per_unit: 65_536,
            simt_width: 64,
            clock_ghz: 2.1,
        },
        memory: MemoryHierarchy {
            l1: CacheLevel {
                name: LevelKind::L1,
                capacity_bytes: 228 * 32 * 1024,
                bandwidth_gbs: 40_000.0,
                latency_ns: 35.0,
                line_bytes: 128,
            },
            l2: CacheLevel {
                name: LevelKind::L2,
                capacity_bytes: 4 * 1024 * 1024 + 256 * 1024 * 1024, // 4 MiB L2 + 256 MiB Infinity Cache
                bandwidth_gbs: 17_000.0,
                latency_ns: 250.0,
                line_bytes: 128,
            },
            hbm: CacheLevel {
                name: LevelKind::Hbm,
                capacity_bytes: 128 * GIB,
                bandwidth_gbs: 5_300.0,
                latency_ns: 600.0,
                line_bytes: 128,
            },
            shared_per_block_bytes: 64 * 1024,
        },
        // HIP's FP64 atomics on CDNA3 sustain a higher rate than Hopper under
        // the same contention pattern; calibrated from Table 4 (HIP, 256
        // atoms: ~3.25e9 atomic updates in 178 ms).
        atomic_fp64_gups: 18.3,
    }
}

/// A tiny, fast, vendor-neutral device used by unit and property tests where
/// absolute numbers do not matter but determinism and speed do.
pub fn test_device() -> GpuSpec {
    GpuSpec {
        name: "SimTest GPU - 1 GB".to_string(),
        vendor: Vendor::Generic,
        memory_bytes: GIB,
        bandwidth_gbs: 100.0,
        fp32_tflops: 10.0,
        fp64_tflops: 5.0,
        topology: ComputeTopology {
            num_compute_units: 8,
            max_threads_per_unit: 2048,
            max_threads_per_block: 1024,
            registers_per_unit: 65_536,
            simt_width: 32,
            clock_ghz: 1.0,
        },
        memory: MemoryHierarchy {
            l1: CacheLevel {
                name: LevelKind::L1,
                capacity_bytes: 8 * 128 * 1024,
                bandwidth_gbs: 1_000.0,
                latency_ns: 30.0,
                line_bytes: 128,
            },
            l2: CacheLevel {
                name: LevelKind::L2,
                capacity_bytes: 4 * 1024 * 1024,
                bandwidth_gbs: 400.0,
                latency_ns: 150.0,
                line_bytes: 128,
            },
            hbm: CacheLevel {
                name: LevelKind::Hbm,
                capacity_bytes: GIB,
                bandwidth_gbs: 100.0,
                latency_ns: 400.0,
                line_bytes: 128,
            },
            shared_per_block_bytes: 48 * 1024,
        },
        atomic_fp64_gups: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Precision;

    #[test]
    fn h100_matches_table1() {
        let spec = h100_nvl();
        assert_eq!(spec.vendor, Vendor::Nvidia);
        assert!((spec.bandwidth_gbs - 3_900.0).abs() < 1e-9);
        assert!((spec.fp32_tflops - 60.0).abs() < 1e-9);
        assert!((spec.fp64_tflops - 30.0).abs() < 1e-9);
        assert_eq!(spec.memory_bytes, 94 * GIB);
        spec.validate().expect("H100 preset must validate");
    }

    #[test]
    fn mi300a_matches_table1() {
        let spec = mi300a();
        assert_eq!(spec.vendor, Vendor::Amd);
        assert!((spec.bandwidth_gbs - 5_300.0).abs() < 1e-9);
        assert!((spec.fp32_tflops - 122.6).abs() < 1e-9);
        assert!((spec.fp64_tflops - 61.3).abs() < 1e-9);
        assert_eq!(spec.memory_bytes, 128 * GIB);
        spec.validate().expect("MI300A preset must validate");
    }

    #[test]
    fn mi300a_has_higher_peaks_than_h100() {
        // The paper notes the MI300A has both higher bandwidth and higher
        // FP32/FP64 peaks; relative results depend on this ordering.
        let h = h100_nvl();
        let m = mi300a();
        assert!(m.bandwidth_gbs > h.bandwidth_gbs);
        assert!(m.peak_flops(Precision::Fp32) > h.peak_flops(Precision::Fp32));
        assert!(m.peak_flops(Precision::Fp64) > h.peak_flops(Precision::Fp64));
    }

    #[test]
    fn test_device_validates_and_is_small() {
        let spec = test_device();
        spec.validate().expect("test device must validate");
        assert!(spec.memory_bytes <= GIB);
    }

    #[test]
    fn preset_enum_builds_specs() {
        assert_eq!(GpuPreset::H100Nvl.spec().vendor, Vendor::Nvidia);
        assert_eq!(GpuPreset::Mi300a.spec().vendor, Vendor::Amd);
        assert_eq!(GpuPreset::TestDevice.spec().vendor, Vendor::Generic);
        assert_eq!(all_presets().len(), 2);
    }

    #[test]
    fn simt_width_matches_vendor() {
        assert_eq!(h100_nvl().topology.simt_width, Vendor::Nvidia.simt_width());
        assert_eq!(mi300a().topology.simt_width, Vendor::Amd.simt_width());
    }
}
