//! Keyed memo caches for expensive workload-input generation.
//!
//! Every experiment, test and bench target that touches a workload used to
//! regenerate its inputs from scratch — the 1024-atom [`HeliumSystem`] alone
//! costs ~19 million `exp()` calls for its Schwarz factors, and the full
//! report rebuilt it eight times (four platforms × Table 4 and Table 5). The
//! caches here memoise generation behind the *parameters that actually shape
//! the output*: callers with equal keys share one immutable `Arc`'d instance.
//!
//! Concurrency: each key owns a cell that records which thread is currently
//! generating. Threads hitting a cold key block until the value is published
//! — *unless* the requesting thread itself holds a generation claim (on this
//! key or any other). A claim holder never waits: it falls back to a
//! redundant generation with first-publish wins. That covers same-thread
//! reentrancy, and — crucially — the cross-key cycle the pool's helping can
//! produce: a worker mid-generation of key A steals a task that requests
//! in-flight key B while B's generator has symmetrically stolen a task
//! requesting A. If either waited, both would block forever with their
//! generations suspended beneath the wait; because holders regenerate
//! instead, every claim is always released in finite time. Generators are
//! deterministic, so a redundant copy is identical. Once warm, a request
//! costs one uncontended map-mutex fetch of the cell plus an `Arc` clone —
//! no per-cell claim bookkeeping.

use crate::hartree_fock::{HartreeFockConfig, HeliumSystem};
use crate::minibude::{Deck, MiniBudeConfig};
use crate::stencil7::{initialize_grid, StencilConfig};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::ThreadId;

thread_local! {
    /// Number of generation claims this thread currently holds, across all
    /// memos. While it is non-zero the thread must never block on another
    /// key's publication (see the module docs for the cycle this prevents).
    static CLAIMS_HELD: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// One memo cell: the published value plus the claim state used to
/// deduplicate concurrent cold-key generation.
struct MemoCell<V> {
    value: OnceLock<Arc<V>>,
    /// Thread currently generating this key, if any.
    generating: Mutex<Option<ThreadId>>,
    published: Condvar,
}

impl<V> Default for MemoCell<V> {
    fn default() -> Self {
        MemoCell {
            value: OnceLock::new(),
            generating: Mutex::new(None),
            published: Condvar::new(),
        }
    }
}

/// Clears a cell's claim (on publish *or* unwind) and wakes the waiters.
struct ClaimGuard<'a, V> {
    cell: &'a MemoCell<V>,
}

impl<V> Drop for ClaimGuard<'_, V> {
    fn drop(&mut self) {
        CLAIMS_HELD.with(|held| held.set(held.get() - 1));
        let mut generating = self
            .cell
            .generating
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *generating = None;
        self.cell.published.notify_all();
    }
}

/// A lazily-created map of `key → MemoCell<V>`.
struct Memo<K, V> {
    map: OnceLock<Mutex<HashMap<K, Arc<MemoCell<V>>>>>,
}

impl<K: Eq + Hash, V> Memo<K, V> {
    const fn new() -> Self {
        Memo {
            map: OnceLock::new(),
        }
    }

    /// Returns the cached value for `key`, generating it with `init` on the
    /// first request. The map lock is held only to fetch the key's cell;
    /// generation runs lock-free. See the module docs for the concurrency
    /// contract (claim-free waiters block, claim holders regenerate
    /// redundantly).
    fn get_or_generate(&self, key: K, init: impl FnOnce() -> V) -> Arc<V> {
        let map = self.map.get_or_init(|| Mutex::new(HashMap::new()));
        let cell = {
            let mut map = map.lock().unwrap_or_else(|e| e.into_inner());
            map.entry(key).or_default().clone()
        };
        // Warm path: a published value needs no claim bookkeeping at all.
        if let Some(value) = cell.value.get() {
            return value.clone();
        }
        let me = std::thread::current().id();
        let mut generating = cell.generating.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = cell.value.get() {
                return value.clone();
            }
            match *generating {
                // The key is being generated while this thread holds a claim
                // of its own — on this very key (reentrancy) or on another
                // (cross-key helping); both leave CLAIMS_HELD non-zero.
                // Waiting could deadlock — our own suspended generation may
                // be what the owner is transitively waiting for — so
                // generate a redundant copy and let the first publisher win.
                Some(_) if CLAIMS_HELD.with(|held| held.get()) > 0 => {
                    drop(generating);
                    let value = Arc::new(init());
                    if cell.value.set(value).is_ok() {
                        // We published before the claim owner; wake waiters
                        // now rather than when the owner's claim drops. The
                        // lock orders this notify after any waiter's check of
                        // `value`, so none can park past it.
                        let _relock = cell.generating.lock().unwrap_or_else(|e| e.into_inner());
                        cell.published.notify_all();
                    }
                    return cell.value.get().expect("memo cell published").clone();
                }
                // Another thread is generating and we hold no claims, so
                // waiting cannot form a cycle: wait for the publish (or for
                // the owner's unwind, in which case the claim is
                // re-contended). A waiting pool worker idles here for the one
                // cold-start window per key — accepted in exchange for
                // keeping this crate off the pool's internals.
                Some(_) => {
                    generating = cell
                        .published
                        .wait(generating)
                        .unwrap_or_else(|e| e.into_inner());
                }
                // Cold key: claim it and generate.
                None => {
                    *generating = Some(me);
                    drop(generating);
                    CLAIMS_HELD.with(|held| held.set(held.get() + 1));
                    let guard = ClaimGuard { cell: &cell };
                    let value = Arc::new(init());
                    let _ = cell.value.set(value);
                    drop(guard);
                    return cell.value.get().expect("memo cell published").clone();
                }
            }
        }
    }
}

/// The fields of [`HartreeFockConfig`] that determine the generated system
/// (screening tolerance and validation flags do not).
#[derive(PartialEq, Eq, Hash)]
struct HeliumKey {
    natoms: u32,
    ngauss: u32,
    spacing_bits: u64,
}

static HELIUM: Memo<HeliumKey, HeliumSystem> = Memo::new();

/// The shared [`HeliumSystem`] for a configuration — geometry, basis, density
/// and Schwarz factors are generated once per distinct
/// (natoms, ngauss, spacing) and reused by the report, tests and benches.
pub fn helium_system(config: &HartreeFockConfig) -> Arc<HeliumSystem> {
    HELIUM.get_or_generate(
        HeliumKey {
            natoms: config.natoms,
            ngauss: config.ngauss,
            spacing_bits: config.spacing.to_bits(),
        },
        || HeliumSystem::generate(config),
    )
}

/// The fields of [`MiniBudeConfig`] that determine the generated deck
/// (`ppwi`, `wg` and `executed_poses` only affect the launch, not the deck).
#[derive(PartialEq, Eq, Hash)]
struct DeckKey {
    natlig: usize,
    natpro: usize,
    nposes: usize,
    seed: u64,
}

static DECK: Memo<DeckKey, Deck> = Memo::new();

/// The shared miniBUDE [`Deck`] for a configuration. The paper's PPWI sweep
/// runs the same bm1 deck through 16 launch shapes per device; this memo
/// generates it once.
pub fn minibude_deck(config: &MiniBudeConfig) -> Arc<Deck> {
    DECK.get_or_generate(
        DeckKey {
            natlig: config.natlig,
            natpro: config.natpro,
            nposes: config.nposes,
            seed: config.seed,
        },
        || Deck::generate(config),
    )
}

static GRID: Memo<usize, Vec<f64>> = Memo::new();

/// The shared stencil input grid for a configuration (determined by the grid
/// side `l` alone — the field is evaluated on the normalised unit cube).
pub fn stencil_grid(config: &StencilConfig) -> Arc<Vec<f64>> {
    GRID.get_or_generate(config.l, || initialize_grid(config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn cold_key_generation_is_deduplicated_across_threads() {
        static MEMO: Memo<u32, u64> = Memo::new();
        let generations = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let value = MEMO.get_or_generate(7, || {
                        generations.fetch_add(1, Ordering::SeqCst);
                        // Hold the claim long enough for the others to arrive.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        42
                    });
                    assert_eq!(*value, 42);
                });
            }
        });
        assert_eq!(
            generations.load(Ordering::SeqCst),
            1,
            "distinct threads must share one generation"
        );
    }

    #[test]
    fn cross_key_claim_cycle_cannot_deadlock() {
        // The scenario the pool's helping can produce: two threads each hold
        // a generation claim on one key while requesting the other's
        // in-flight key. Claim holders must regenerate redundantly instead
        // of waiting — if either waits, this test hangs forever.
        static MEMO: Memo<u32, u32> = Memo::new();
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let v = MEMO.get_or_generate(1, || {
                    barrier.wait(); // both claims are now held
                    *MEMO.get_or_generate(2, || 20) + 1
                });
                // Whoever published first, the cell is consistent afterwards.
                assert!(Arc::ptr_eq(&v, &MEMO.get_or_generate(1, || unreachable!())));
            });
            scope.spawn(|| {
                let v = MEMO.get_or_generate(2, || {
                    barrier.wait();
                    *MEMO.get_or_generate(1, || 10) + 1
                });
                assert!(Arc::ptr_eq(&v, &MEMO.get_or_generate(2, || unreachable!())));
            });
        });
    }

    #[test]
    fn helium_systems_are_shared_per_key() {
        let a = helium_system(&HartreeFockConfig::validation(14));
        let b = helium_system(&HartreeFockConfig::validation(14));
        assert!(Arc::ptr_eq(&a, &b));
        // The screening tolerance is not part of the key.
        let mut config = HartreeFockConfig::validation(14);
        config.screening_tol = 1e-3;
        assert!(Arc::ptr_eq(&a, &helium_system(&config)));
        // A different size is a different system.
        let c = helium_system(&HartreeFockConfig::validation(15));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.natoms, 15);
    }

    #[test]
    fn cached_system_matches_fresh_generation() {
        let config = HartreeFockConfig::validation(11);
        let cached = helium_system(&config);
        let fresh = HeliumSystem::generate(&config);
        assert_eq!(cached.geometry, fresh.geometry);
        assert_eq!(cached.dens, fresh.dens);
        assert_eq!(cached.schwarz, fresh.schwarz);
    }

    #[test]
    fn decks_are_shared_across_launch_shapes() {
        let a = minibude_deck(&MiniBudeConfig::validation(1, 8));
        // Same deck dimensions and seed, different ppwi/wg: same deck.
        let b = minibude_deck(&MiniBudeConfig::validation(16, 64));
        assert!(Arc::ptr_eq(&a, &b));
        let mut other = MiniBudeConfig::validation(1, 8);
        other.seed += 1;
        assert!(!Arc::ptr_eq(&a, &minibude_deck(&other)));
    }

    #[test]
    fn stencil_grids_are_shared_per_side_and_correct() {
        let config = StencilConfig::validation(16, gpu_spec::Precision::Fp64);
        let a = stencil_grid(&config);
        let b = stencil_grid(&config);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, initialize_grid(&config));
    }
}
