//! Keyed memo caches for expensive workload-input generation.
//!
//! Every experiment, test and bench target that touches a workload used to
//! regenerate its inputs from scratch — the 1024-atom [`HeliumSystem`] alone
//! costs ~19 million `exp()` calls for its Schwarz factors, and the full
//! report rebuilt it eight times (four platforms × Table 4 and Table 5). The
//! caches here memoise generation behind the *parameters that actually shape
//! the output*: callers with equal keys share one immutable `Arc`'d instance.
//!
//! Concurrency: each key owns a cell that records which thread is currently
//! generating. Threads hitting a cold key block until the value is published
//! — *unless* the requesting thread itself holds a generation claim (on this
//! key or any other). A claim holder never waits: it falls back to a
//! redundant generation with first-publish wins. That covers same-thread
//! reentrancy, and — crucially — the cross-key cycle the pool's helping can
//! produce: a worker mid-generation of key A steals a task that requests
//! in-flight key B while B's generator has symmetrically stolen a task
//! requesting A. If either waited, both would block forever with their
//! generations suspended beneath the wait; because holders regenerate
//! instead, every claim is always released in finite time. Generators are
//! deterministic, so a redundant copy is identical. Once warm, a request
//! costs one uncontended map-mutex fetch of the cell plus an `Arc` clone —
//! no per-cell claim bookkeeping.

use crate::hartree_fock::{
    reference_fock, HartreeFockConfig, HeliumSystem, SampleWeighting, SampledPlan,
};
use crate::minibude::{reference_energies, Deck, MiniBudeConfig};
use crate::stencil7::{initialize_grid, reference_laplacian, StencilConfig};
use gpu_sim::memory::Device;
use gpu_sim::{istr, IStr, TimingModel};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::ThreadId;
use vendor_models::Platform;

thread_local! {
    /// Number of generation claims this thread currently holds, across all
    /// memos. While it is non-zero the thread must never block on another
    /// key's publication (see the module docs for the cycle this prevents).
    static CLAIMS_HELD: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// One memo cell: the published value plus the claim state used to
/// deduplicate concurrent cold-key generation.
struct MemoCell<V> {
    value: OnceLock<Arc<V>>,
    /// Thread currently generating this key, if any.
    generating: Mutex<Option<ThreadId>>,
    published: Condvar,
}

impl<V> Default for MemoCell<V> {
    fn default() -> Self {
        MemoCell {
            value: OnceLock::new(),
            generating: Mutex::new(None),
            published: Condvar::new(),
        }
    }
}

/// Clears a cell's claim (on publish *or* unwind) and wakes the waiters.
struct ClaimGuard<'a, V> {
    cell: &'a MemoCell<V>,
}

impl<V> Drop for ClaimGuard<'_, V> {
    fn drop(&mut self) {
        CLAIMS_HELD.with(|held| held.set(held.get() - 1));
        let mut generating = self
            .cell
            .generating
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *generating = None;
        self.cell.published.notify_all();
    }
}

/// A lazily-created map of `key → MemoCell<V>`.
struct Memo<K, V> {
    map: OnceLock<Mutex<HashMap<K, Arc<MemoCell<V>>>>>,
}

impl<K: Eq + Hash, V> Memo<K, V> {
    const fn new() -> Self {
        Memo {
            map: OnceLock::new(),
        }
    }

    /// Returns the cached value for `key`, generating it with `init` on the
    /// first request. The map lock is held only to fetch the key's cell;
    /// generation runs lock-free. See the module docs for the concurrency
    /// contract (claim-free waiters block, claim holders regenerate
    /// redundantly).
    fn get_or_generate(&self, key: K, init: impl FnOnce() -> V) -> Arc<V> {
        let map = self.map.get_or_init(|| Mutex::new(HashMap::new()));
        let cell = {
            let mut map = map.lock().unwrap_or_else(|e| e.into_inner());
            map.entry(key).or_default().clone()
        };
        // Warm path: a published value needs no claim bookkeeping at all.
        if let Some(value) = cell.value.get() {
            return value.clone();
        }
        let me = std::thread::current().id();
        let mut generating = cell.generating.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = cell.value.get() {
                return value.clone();
            }
            match *generating {
                // The key is being generated while this thread holds a claim
                // of its own — on this very key (reentrancy) or on another
                // (cross-key helping); both leave CLAIMS_HELD non-zero.
                // Waiting could deadlock — our own suspended generation may
                // be what the owner is transitively waiting for — so
                // generate a redundant copy and let the first publisher win.
                Some(_) if CLAIMS_HELD.with(|held| held.get()) > 0 => {
                    drop(generating);
                    let value = Arc::new(init());
                    if cell.value.set(value).is_ok() {
                        // We published before the claim owner; wake waiters
                        // now rather than when the owner's claim drops. The
                        // lock orders this notify after any waiter's check of
                        // `value`, so none can park past it.
                        let _relock = cell.generating.lock().unwrap_or_else(|e| e.into_inner());
                        cell.published.notify_all();
                    }
                    return cell.value.get().expect("memo cell published").clone();
                }
                // Another thread is generating and we hold no claims, so
                // waiting cannot form a cycle: wait for the publish (or for
                // the owner's unwind, in which case the claim is
                // re-contended). A waiting pool worker idles here for the one
                // cold-start window per key — accepted in exchange for
                // keeping this crate off the pool's internals.
                Some(_) => {
                    generating = cell
                        .published
                        .wait(generating)
                        .unwrap_or_else(|e| e.into_inner());
                }
                // Cold key: claim it and generate.
                None => {
                    *generating = Some(me);
                    drop(generating);
                    CLAIMS_HELD.with(|held| held.set(held.get() + 1));
                    let guard = ClaimGuard { cell: &cell };
                    let value = Arc::new(init());
                    let _ = cell.value.set(value);
                    drop(guard);
                    return cell.value.get().expect("memo cell published").clone();
                }
            }
        }
    }
}

static DEVICE: Memo<IStr, Device> = Memo::new();

/// The shared simulated [`Device`] for a platform's GPU spec (keyed by the
/// spec's name — there are exactly two devices in the paper). A `Device` is
/// internally reference-counted, so handing every run a clone of the cached
/// instance makes per-run device setup allocation-free; capacity accounting
/// is shared, which is exactly how a real device behaves.
pub fn device(platform: &Platform) -> Device {
    (*DEVICE.get_or_generate(istr(&platform.spec.name), || {
        Device::new(platform.spec.clone())
    }))
    .clone()
}

static TIMING: Memo<IStr, TimingModel> = Memo::new();

/// The shared [`TimingModel`] for a platform's GPU spec. Building a model
/// clones the spec (one heap-allocated name); every launch of every workload
/// needs one, so the two paper devices' models are built once.
pub fn timing_model(platform: &Platform) -> Arc<TimingModel> {
    TIMING.get_or_generate(istr(&platform.spec.name), || platform.timing_model())
}

/// The fields of [`HartreeFockConfig`] that determine the generated system
/// (screening tolerance and validation flags do not).
#[derive(PartialEq, Eq, Hash)]
struct HeliumKey {
    natoms: u32,
    ngauss: u32,
    spacing_bits: u64,
}

fn helium_key(config: &HartreeFockConfig) -> HeliumKey {
    HeliumKey {
        natoms: config.natoms,
        ngauss: config.ngauss,
        spacing_bits: config.spacing.to_bits(),
    }
}

static HELIUM: Memo<HeliumKey, HeliumSystem> = Memo::new();

/// The shared [`HeliumSystem`] for a configuration — geometry, basis, density
/// and Schwarz factors are generated once per distinct
/// (natoms, ngauss, spacing) and reused by the report, tests and benches.
pub fn helium_system(config: &HartreeFockConfig) -> Arc<HeliumSystem> {
    HELIUM.get_or_generate(helium_key(config), || HeliumSystem::generate(config))
}

/// A Hartree–Fock reference result additionally depends on the screening
/// tolerance (it decides which quartets contribute).
#[derive(PartialEq, Eq, Hash)]
struct FockKey {
    system: HeliumKey,
    tol_bits: u64,
}

fn fock_key(config: &HartreeFockConfig) -> FockKey {
    FockKey {
        system: helium_key(config),
        tol_bits: config.screening_tol.to_bits(),
    }
}

static FOCK_REF: Memo<FockKey, Vec<f64>> = Memo::new();

/// The shared CPU-reference Fock matrix for a configuration. The full quartet
/// sweep is the most expensive part of a functional Hartree–Fock validation;
/// four platforms re-verify against the same matrix, and repeated launches
/// reuse it outright.
pub fn hartree_fock_reference(config: &HartreeFockConfig) -> Arc<Vec<f64>> {
    FOCK_REF.get_or_generate(fock_key(config), || {
        reference_fock(&helium_system(config), config.screening_tol)
    })
}

#[derive(PartialEq, Eq, Hash)]
struct SampledKey {
    fock: FockKey,
    samples: u64,
    shards: u64,
    weighting: SampleWeighting,
}

static SAMPLED: Memo<SampledKey, SampledPlan> = Memo::new();

/// The shared run-invariant plan of a sampled Hartree–Fock validation: the
/// stratified probe set, its CPU-reference ERIs and the expected Fock
/// contributions. Sampling is purely arithmetic (no RNG), so the plan is a
/// function of the system, tolerance, probe counts and weighting alone.
pub fn sampled_plan(
    config: &HartreeFockConfig,
    samples: u64,
    shards: u64,
    weighting: SampleWeighting,
) -> Arc<SampledPlan> {
    SAMPLED.get_or_generate(
        SampledKey {
            fock: fock_key(config),
            samples,
            shards,
            weighting,
        },
        || {
            SampledPlan::generate(
                &helium_system(config),
                config.screening_tol,
                config.nquartets(),
                samples,
                shards,
                weighting,
            )
        },
    )
}

/// The fields of [`MiniBudeConfig`] that determine the generated deck
/// (`ppwi`, `wg` and `executed_poses` only affect the launch, not the deck).
#[derive(PartialEq, Eq, Hash)]
struct DeckKey {
    natlig: usize,
    natpro: usize,
    nposes: usize,
    seed: u64,
}

fn deck_key(config: &MiniBudeConfig) -> DeckKey {
    DeckKey {
        natlig: config.natlig,
        natpro: config.natpro,
        nposes: config.nposes,
        seed: config.seed,
    }
}

static DECK: Memo<DeckKey, Deck> = Memo::new();

/// The shared miniBUDE [`Deck`] for a configuration. The paper's PPWI sweep
/// runs the same bm1 deck through 16 launch shapes per device; this memo
/// generates it once.
pub fn minibude_deck(config: &MiniBudeConfig) -> Arc<Deck> {
    DECK.get_or_generate(deck_key(config), || Deck::generate(config))
}

/// The flattened (4-floats-per-atom / 3-floats-per-type) device upload
/// views of a deck — the layout workaround the paper describes for Mojo's
/// missing plain-old-data GPU allocations.
pub struct DeckFlats {
    /// Protein atoms, 4 floats each (x, y, z, type-as-float).
    pub protein: Vec<f32>,
    /// Ligand atoms, 4 floats each.
    pub ligand: Vec<f32>,
    /// Force-field parameters, 3 floats per type (radius, hphb, charge).
    pub forcefield: Vec<f32>,
}

static FLATS: Memo<DeckKey, DeckFlats> = Memo::new();

/// The shared flattened upload buffers of a deck. Both fasten drivers upload
/// the same three arrays on every run; flattening them once per deck keeps
/// repeated launches off the allocator.
pub fn minibude_flats(config: &MiniBudeConfig) -> Arc<DeckFlats> {
    FLATS.get_or_generate(deck_key(config), || {
        let deck = minibude_deck(config);
        DeckFlats {
            protein: deck.protein_flat(),
            ligand: deck.ligand_flat(),
            forcefield: deck.forcefield_flat(),
        }
    })
}

/// A fasten reference depends on the deck and on how many poses execute.
#[derive(PartialEq, Eq, Hash)]
struct BudeRefKey {
    deck: DeckKey,
    poses: usize,
}

static BUDE_REF: Memo<BudeRefKey, Vec<f32>> = Memo::new();

/// The shared CPU-reference pose energies for a configuration's executed
/// poses.
pub fn minibude_reference(config: &MiniBudeConfig) -> Arc<Vec<f32>> {
    BUDE_REF.get_or_generate(
        BudeRefKey {
            deck: deck_key(config),
            poses: config.executed_poses,
        },
        || reference_energies(&minibude_deck(config), config.executed_poses),
    )
}

static GRID: Memo<usize, Vec<f64>> = Memo::new();

/// The shared stencil input grid for a configuration (determined by the grid
/// side `l` alone — the field is evaluated on the normalised unit cube).
pub fn stencil_grid(config: &StencilConfig) -> Arc<Vec<f64>> {
    GRID.get_or_generate(config.l, || initialize_grid(config))
}

static GRID_F32: Memo<usize, Vec<f32>> = Memo::new();

/// The shared FP32 narrowing of the stencil input grid.
pub fn stencil_grid_f32(config: &StencilConfig) -> Arc<Vec<f32>> {
    GRID_F32.get_or_generate(config.l, || {
        stencil_grid(config).iter().map(|&v| v as f32).collect()
    })
}

/// Per-precision access to the cached stencil grid, so the generic driver
/// body can fetch its working-precision input without converting per run.
pub trait StencilGridCache: Sized {
    /// The cached input grid at this precision.
    fn cached_stencil_grid(config: &StencilConfig) -> Arc<Vec<Self>>;
}

impl StencilGridCache for f64 {
    fn cached_stencil_grid(config: &StencilConfig) -> Arc<Vec<f64>> {
        stencil_grid(config)
    }
}

impl StencilGridCache for f32 {
    fn cached_stencil_grid(config: &StencilConfig) -> Arc<Vec<f32>> {
        stencil_grid_f32(config)
    }
}

/// A stencil reference depends on the grid side and the spacing that shapes
/// the coefficients (always `1/(l-1)` today, keyed defensively anyway).
#[derive(PartialEq, Eq, Hash)]
struct StencilRefKey {
    l: usize,
    spacing_bits: u64,
}

static STENCIL_REF: Memo<StencilRefKey, Vec<f64>> = Memo::new();

/// The shared CPU-reference Laplacian for a configuration. The reference is
/// always evaluated in f64 from the f64 grid, whatever the working precision.
pub fn stencil_reference(config: &StencilConfig) -> Arc<Vec<f64>> {
    STENCIL_REF.get_or_generate(
        StencilRefKey {
            l: config.l,
            spacing_bits: config.spacing.to_bits(),
        },
        || reference_laplacian(config, &stencil_grid(config)),
    )
}

/// A Jacobi reference solve depends on the grid side and the iteration cap
/// (block size and validate flags never change the arithmetic).
#[derive(PartialEq, Eq, Hash)]
struct JacobiRefKey {
    l: usize,
    iters: usize,
}

static JACOBI_REF: Memo<JacobiRefKey, crate::jacobi::JacobiSolution> = Memo::new();

/// The shared deterministic-lane CPU reference solve for a Jacobi
/// configuration: the golden grid, the residual history, and the convergence
/// point every driver replays.
pub fn jacobi_reference(
    config: &crate::jacobi::JacobiConfig,
) -> Arc<crate::jacobi::JacobiSolution> {
    JACOBI_REF.get_or_generate(
        JacobiRefKey {
            l: config.l,
            iters: config.iters,
        },
        || crate::jacobi::reference_jacobi(config),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn cold_key_generation_is_deduplicated_across_threads() {
        static MEMO: Memo<u32, u64> = Memo::new();
        let generations = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let value = MEMO.get_or_generate(7, || {
                        generations.fetch_add(1, Ordering::SeqCst);
                        // Hold the claim long enough for the others to arrive.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        42
                    });
                    assert_eq!(*value, 42);
                });
            }
        });
        assert_eq!(
            generations.load(Ordering::SeqCst),
            1,
            "distinct threads must share one generation"
        );
    }

    #[test]
    fn cross_key_claim_cycle_cannot_deadlock() {
        // The scenario the pool's helping can produce: two threads each hold
        // a generation claim on one key while requesting the other's
        // in-flight key. Claim holders must regenerate redundantly instead
        // of waiting — if either waits, this test hangs forever.
        static MEMO: Memo<u32, u32> = Memo::new();
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let v = MEMO.get_or_generate(1, || {
                    barrier.wait(); // both claims are now held
                    *MEMO.get_or_generate(2, || 20) + 1
                });
                // Whoever published first, the cell is consistent afterwards.
                assert!(Arc::ptr_eq(&v, &MEMO.get_or_generate(1, || unreachable!())));
            });
            scope.spawn(|| {
                let v = MEMO.get_or_generate(2, || {
                    barrier.wait();
                    *MEMO.get_or_generate(1, || 10) + 1
                });
                assert!(Arc::ptr_eq(&v, &MEMO.get_or_generate(2, || unreachable!())));
            });
        });
    }

    #[test]
    fn helium_systems_are_shared_per_key() {
        let a = helium_system(&HartreeFockConfig::validation(14));
        let b = helium_system(&HartreeFockConfig::validation(14));
        assert!(Arc::ptr_eq(&a, &b));
        // The screening tolerance is not part of the key.
        let mut config = HartreeFockConfig::validation(14);
        config.screening_tol = 1e-3;
        assert!(Arc::ptr_eq(&a, &helium_system(&config)));
        // A different size is a different system.
        let c = helium_system(&HartreeFockConfig::validation(15));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.natoms, 15);
    }

    #[test]
    fn cached_system_matches_fresh_generation() {
        let config = HartreeFockConfig::validation(11);
        let cached = helium_system(&config);
        let fresh = HeliumSystem::generate(&config);
        assert_eq!(cached.geometry, fresh.geometry);
        assert_eq!(cached.dens, fresh.dens);
        assert_eq!(cached.schwarz, fresh.schwarz);
    }

    #[test]
    fn decks_are_shared_across_launch_shapes() {
        let a = minibude_deck(&MiniBudeConfig::validation(1, 8));
        // Same deck dimensions and seed, different ppwi/wg: same deck.
        let b = minibude_deck(&MiniBudeConfig::validation(16, 64));
        assert!(Arc::ptr_eq(&a, &b));
        let mut other = MiniBudeConfig::validation(1, 8);
        other.seed += 1;
        assert!(!Arc::ptr_eq(&a, &minibude_deck(&other)));
    }

    #[test]
    fn stencil_grids_are_shared_per_side_and_correct() {
        let config = StencilConfig::validation(16, gpu_spec::Precision::Fp64);
        let a = stencil_grid(&config);
        let b = stencil_grid(&config);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*a, initialize_grid(&config));
    }
}
