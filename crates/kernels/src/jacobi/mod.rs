//! Iterative Jacobi solver workload — the multi-pass composite pattern of
//! DESIGN.md §15.
//!
//! The solver relaxes a cubic Laplace problem (Dirichlet boundary from the
//! seeded stencil field) by alternating a six-neighbour sweep with a
//! deterministic RMS iterate-difference reduction, stopping at a documented
//! residual reduction or a typed iteration cap. It composes the two primitive
//! patterns the paper benchmarks in isolation — the bandwidth-bound stencil
//! and the tree reduction — into one convergence-driven pipeline, which is
//! what stresses the lane machinery: the reduction's value feeds back into
//! control flow (how many sweeps run), so lane divergence would change the
//! *shape* of the run, not just its last few bits.

mod config;
mod cost;
mod portable;
mod reference;
mod vendor;
pub mod workload;

pub use config::{
    JacobiConfig, MAX_FUNCTIONAL_L_JACOBI, MAX_JACOBI_ITERS, RESIDUAL_REDUCTION, SIXTH,
};
pub use cost::jacobi_cost;
pub use portable::{run_portable, run_portable_lane};
pub use reference::{reference_jacobi, residual_rms, seed_config, solve_host, JacobiSolution};
pub use vendor::run_vendor;

use crate::cache;
use crate::common::WorkloadRun;
use crate::simd::{self, LanePolicy};
use gpu_sim::SimError;
use vendor_models::Platform;

/// How many sweeps a run of `config` will execute: the memoized reference
/// solve's convergence point when the solve runs functionally, the iteration
/// cap otherwise (the cost model has no residual to watch). Shared by the
/// cost model and the figure of merit so timing and bandwidth agree.
pub fn planned_iters(config: &JacobiConfig) -> usize {
    if config.should_execute() {
        cache::jacobi_reference(config).iters_run
    } else {
        config.iters
    }
}

/// Runs the Jacobi workload on a platform, dispatching to the portable or
/// vendor implementation according to the platform's backend, under the
/// process-wide lane policy.
pub fn run(platform: &Platform, config: &JacobiConfig) -> Result<WorkloadRun, SimError> {
    run_lane(platform, config, simd::process_policy())
}

/// Runs the Jacobi workload under an explicit lane policy. The vendor
/// baselines have no host fast lane and ignore the policy.
pub fn run_lane(
    platform: &Platform,
    config: &JacobiConfig,
    policy: LanePolicy,
) -> Result<WorkloadRun, SimError> {
    if platform.backend.is_portable() {
        run_portable_lane(platform, config, policy)
    } else {
        run_vendor(platform, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_paper_platforms_run_and_verify() {
        let config = JacobiConfig::validation(12, 200);
        for platform in [
            Platform::portable_h100(),
            Platform::cuda_h100(false),
            Platform::portable_mi300a(),
            Platform::hip_mi300a(false),
        ] {
            let run = run(&platform, &config).unwrap();
            assert!(
                run.verification.is_verified(),
                "{} should verify",
                platform.label()
            );
            assert!(run.seconds() > 0.0);
        }
    }

    #[test]
    fn planned_iters_follows_convergence_when_functional_and_the_cap_otherwise() {
        let functional = JacobiConfig::validation(16, 400);
        let planned = planned_iters(&functional);
        assert!(planned < 400, "L = 16 converges before the cap");
        assert_eq!(planned, cache::jacobi_reference(&functional).iters_run);

        let modelled = JacobiConfig::paper(256, 750);
        assert_eq!(planned_iters(&modelled), 750);
    }

    #[test]
    fn solve_time_scales_with_the_planned_sweep_count() {
        let short = run(&Platform::portable_h100(), &JacobiConfig::paper(256, 100)).unwrap();
        let long = run(&Platform::portable_h100(), &JacobiConfig::paper(256, 1000)).unwrap();
        let ratio = long.seconds() / short.seconds();
        assert!(
            (ratio - 10.0).abs() < 0.5,
            "10× the sweeps should cost ≈10× the time, got {ratio}"
        );
    }
}
