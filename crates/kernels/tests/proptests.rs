//! Property-based tests on the kernels' index math, screening counts and
//! physical invariants.

use gpu_spec::Precision;
use proptest::prelude::*;
use science_kernels::framestream::{accumulate_frames, ACC_INIT};
use science_kernels::hartree_fock::{pair_count, pair_decode, pair_encode, surviving_quartets};
use science_kernels::jacobi::{solve_host, JacobiConfig};
use science_kernels::minibude::{Atom, Deck, ForceFieldParam, MiniBudeConfig};
use science_kernels::stencil7::{reference_laplacian, StencilConfig};
use science_kernels::Lane;

/// Brute-force counterpart of the two-pointer screening count.
fn brute_force_survivors(schwarz: &[f64], tol: f64) -> u64 {
    let mut count = 0;
    for ij in 0..schwarz.len() {
        for kl in ij..schwarz.len() {
            if schwarz[ij] * schwarz[kl] > tol {
                count += 1;
            }
        }
    }
    count
}

proptest! {
    // Cap the per-property case count so the tier-1 suite stays fast and
    // deterministic; override with PROPTEST_CASES for deeper soak runs.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Triangular pair encoding is a bijection for arbitrary (i <= j).
    fn pair_encoding_round_trips(j in 0u64..2000, offset in 0u64..2000) {
        let i = offset.min(j);
        let index = pair_encode(i, j);
        prop_assert!(index < pair_count(j + 1));
        prop_assert_eq!(pair_decode(index), (i, j));
    }

    /// The O(n log n) Schwarz survivor count equals the brute-force count for
    /// arbitrary non-negative factor sets and thresholds.
    fn screening_count_matches_brute_force(
        factors in proptest::collection::vec(0.0f64..2.0, 1..80),
        tol in 0.0f64..2.0,
    ) {
        prop_assert_eq!(
            surviving_quartets(&factors, tol),
            brute_force_survivors(&factors, tol)
        );
    }

    /// The seven-point Laplacian of any affine field is zero on interior cells
    /// (an exact discrete identity, independent of grid size or coefficients).
    fn laplacian_annihilates_affine_fields(
        l in 4usize..16,
        a in -5.0f64..5.0, b in -5.0f64..5.0, c in -5.0f64..5.0, d in -5.0f64..5.0,
    ) {
        let config = StencilConfig::validation(l, Precision::Fp64);
        let mut u = vec![0.0; l * l * l];
        for i in 0..l {
            for j in 0..l {
                for k in 0..l {
                    u[(i * l + j) * l + k] = a * i as f64 + b * j as f64 + c * k as f64 + d;
                }
            }
        }
        let f = reference_laplacian(&config, &u);
        let scale = (a.abs() + b.abs() + c.abs() + d.abs() + 1.0) / config.spacing.powi(2);
        for v in f {
            prop_assert!(v.abs() <= 1e-9 * scale);
        }
    }

    /// Pair interaction energy is symmetric under exchanging the two atoms'
    /// roles when their force-field parameters are identical.
    fn pair_energy_is_symmetric_for_identical_types(
        x in -10.0f32..10.0, y in -10.0f32..10.0, z in -10.0f32..10.0,
        radius in 0.5f32..2.5, hphb in -1.0f32..1.0, charge in -0.5f32..0.5,
    ) {
        use science_kernels::minibude::pair_energy;
        let ff = (radius, hphb, charge);
        let forward = pair_energy(0.0, 0.0, 0.0, ff, x, y, z, ff);
        let backward = pair_energy(x, y, z, ff, 0.0, 0.0, 0.0, ff);
        prop_assert!((forward - backward).abs() <= 1e-4 * forward.abs().max(1.0));
    }

    /// The Jacobi residual is monotonically non-increasing for arbitrary grid
    /// sides, iteration caps and lanes: the iteration matrix of the
    /// constant-diagonal Laplacian is symmetric, so the iterate-difference
    /// norm contracts every sweep. Both lanes run on the shim's worker pool,
    /// whose fixed-chunk reductions are bitwise-stable at any thread count.
    fn jacobi_residual_is_monotone_non_increasing(
        l in 4usize..13,
        iters in 1usize..50,
        simd_lane in 0u8..2,
    ) {
        let lane = if simd_lane == 1 { Lane::Simd } else { Lane::Deterministic };
        let solution = solve_host(&JacobiConfig::validation(l, iters), lane);
        prop_assert_eq!(solution.iters_run, solution.residuals.len());
        for pair in solution.residuals.as_slice().windows(2) {
            prop_assert!(
                pair[1] <= pair[0],
                "residual rose on lane {}: {} -> {}", lane, pair[0], pair[1]
            );
        }
    }

    /// Frame-stream accumulation is bitwise-identical between one big batch
    /// and any partition of the frame range into sub-batches, on either lane:
    /// the per-element EMA chain is strictly sequential in the frame index,
    /// so batch boundaries cannot reassociate anything.
    fn framestream_accumulation_is_partition_invariant(
        n in 1usize..3000,
        frames in 1usize..48,
        cuts in proptest::collection::vec(0.0f64..1.0, 0..6),
        simd_lane in 0u8..2,
    ) {
        let lane = if simd_lane == 1 { Lane::Simd } else { Lane::Deterministic };
        let mut whole = vec![ACC_INIT; n];
        accumulate_frames(&mut whole, 0..frames, lane);

        let mut bounds: Vec<usize> = cuts.iter().map(|c| (c * frames as f64) as usize).collect();
        bounds.push(0);
        bounds.push(frames);
        bounds.sort_unstable();
        let mut split = vec![ACC_INIT; n];
        for pair in bounds.windows(2) {
            accumulate_frames(&mut split, pair[0]..pair[1], lane);
        }
        prop_assert_eq!(&whole, &split);
    }

    /// Deck generation honours arbitrary (sane) configuration sizes.
    fn deck_generation_matches_config(natlig in 1usize..32, natpro in 1usize..128, nposes in 1usize..512, seed in 0u64..1000) {
        let config = MiniBudeConfig {
            ppwi: 1,
            wg: 8,
            natlig,
            natpro,
            nposes,
            executed_poses: nposes,
            seed,
        }.normalised();
        let deck = Deck::generate(&config);
        prop_assert_eq!(deck.ligand.len(), natlig);
        prop_assert_eq!(deck.protein.len(), natpro);
        prop_assert!(deck.transforms.iter().all(|t| t.len() == nposes));
        let check = |a: &Atom| a.type_index as usize <= deck.forcefield.len();
        prop_assert!(deck.ligand.iter().all(check));
        let in_range = |p: &ForceFieldParam| p.radius > 0.0;
        prop_assert!(deck.forcefield.iter().all(in_range));
    }
}
