//! Table 2 — seven-point stencil NCU profiling metrics, Mojo vs CUDA.

use super::support::MetricRow;
use crate::render::AsciiTable;
use crate::report::ExperimentReport;
use gpu_sim::ProfileReport;
use gpu_spec::{presets, Precision};
use hpc_metrics::output::CsvTable;
use science_kernels::stencil7::{self, StencilConfig};
use vendor_models::Platform;

/// The two cases profiled in Table 2: FP64 at L=512 and FP32 at L=1024.
pub fn cases() -> [(StencilConfig, &'static str); 2] {
    [
        (
            StencilConfig::paper(512, Precision::Fp64),
            "Double Precision L=512 (512x1x1)",
        ),
        (
            StencilConfig::paper(1024, Precision::Fp32),
            "Single Precision L=1024 (1024x1x1)",
        ),
    ]
}

/// Regenerates Table 2.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table2",
        "Seven-point stencil Mojo vs CUDA NCU profiling metrics",
    );
    report.push_line("[profile constants: EXPERIMENTS.md \u{00a7} Seven-point stencil]");
    let spec = presets::h100_nvl();
    let mut csv = CsvTable::new([
        "case",
        "backend",
        "duration_ms",
        "compute_sm_pct",
        "memory_pct",
        "l1_ai",
        "l2_ai",
        "l3_ai",
        "perf_flops",
        "registers",
        "ldg",
        "stg",
    ]);

    for (config, label) in cases() {
        report.push_line(label);
        let mut table = AsciiTable::new(["ncu metric", "Mojo", "CUDA"]);
        let mojo = stencil7::run(&Platform::portable_h100(), &config).expect("portable run");
        let cuda = stencil7::run(&Platform::cuda_h100(false), &config).expect("cuda run");
        let mojo_prof = ProfileReport::derive(&spec, &mojo.cost, &mojo.profile, &mojo.timing);
        let cuda_prof = ProfileReport::derive(&spec, &cuda.cost, &cuda.profile, &cuda.timing);

        let rows: [MetricRow<ProfileReport>; 10] = [
            ("Duration (ms)", |p| format!("{:.2}", p.duration_ms)),
            ("Compute SM (%)", |p| format!("{:.1}", p.compute_sm_pct)),
            ("Memory (%)", |p| format!("{:.1}", p.memory_pct)),
            ("L1 ai (FLOP/byte)", |p| format!("{:.2}", p.l1_ai)),
            ("L2 ai (FLOP/byte)", |p| format!("{:.2}", p.l2_ai)),
            ("L3 ai (FLOP/byte)", |p| format!("{:.2}", p.l3_ai)),
            ("L1-3 Perf (FLOP/s)", |p| format!("{:.2e}", p.perf_flops)),
            ("Registers", |p| format!("{}", p.registers)),
            ("Load Global (LDG)", |p| format!("{:.0}", p.load_global)),
            ("Store Global (STG)", |p| format!("{:.0}", p.store_global)),
        ];
        for (name, extract) in rows {
            table.push_row([name.to_string(), extract(&mojo_prof), extract(&cuda_prof)]);
        }
        report.push_line(table.render());

        for (backend, prof) in [("Mojo", &mojo_prof), ("CUDA", &cuda_prof)] {
            csv.push_row([
                label.to_string(),
                backend.to_string(),
                format!("{}", prof.duration_ms),
                format!("{}", prof.compute_sm_pct),
                format!("{}", prof.memory_pct),
                format!("{}", prof.l1_ai),
                format!("{}", prof.l2_ai),
                format!("{}", prof.l3_ai),
                format!("{}", prof.perf_flops),
                format!("{}", prof.registers),
                format!("{}", prof.load_global),
                format!("{}", prof.store_global),
            ]);
        }
    }
    report.push_table("ncu_metrics", csv);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduces_the_papers_row_structure_and_shape() {
        let report = run();
        let text = &report.text;
        for row in [
            "Duration (ms)",
            "Compute SM (%)",
            "Memory (%)",
            "L1 ai",
            "Registers",
            "Load Global (LDG)",
            "Store Global (STG)",
        ] {
            assert!(text.contains(row), "missing row {row}");
        }
        // Registers: Mojo 24/26 vs CUDA 21/20 (Table 2).
        assert!(text.contains("24") && text.contains("21"));
        assert!(text.contains("26") && text.contains("20"));
        // Both profiled cases appear.
        assert!(text.contains("Double Precision L=512"));
        assert!(text.contains("Single Precision L=1024"));
        // The rendered header links the calibration provenance.
        assert!(text.contains("EXPERIMENTS.md"));
        assert_eq!(report.tables[0].1.rows.len(), 4);
    }
}
