//! Property tests for the deterministic reduction lane.
//!
//! The lane promises: for any input length and any thread count, `sum` /
//! `reduce` return the value the *same* fixed-chunk tree produces under a
//! strictly serial install — bitwise for `f64`. The pooled arm here runs on
//! the process-global pool at whatever width `RAYON_NUM_THREADS` gives it
//! (CI runs the suite both wide and at 1), the serial arm under
//! `ThreadPoolBuilder::num_threads(1).install`, so one process compares two
//! thread counts directly.

use proptest::prelude::*;
use rayon::prelude::*;

/// Runs `f` with every parallel scope forced serial.
fn serially<R>(f: impl FnOnce() -> R) -> R {
    rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap()
        .install(f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// f64 sums: pooled and serial lanes agree bit-for-bit on arbitrary
    /// lengths (including lengths straddling the chunk width).
    fn f64_sum_is_bitwise_stable(v in proptest::collection::vec(-1.0e9f64..1.0e9, 0..4500)) {
        let pooled: f64 = (0..v.len()).into_par_iter().map(|i| v[i]).sum();
        let serial: f64 = serially(|| (0..v.len()).into_par_iter().map(|i| v[i]).sum());
        prop_assert_eq!(pooled.to_bits(), serial.to_bits());
    }

    /// Integer sums through the lane equal the plain serial fold exactly.
    fn integer_sum_equals_the_serial_fold(v in proptest::collection::vec(0u64..1_000_000, 0..4500)) {
        let pooled: u64 = (0..v.len()).into_par_iter().map(|i| v[i]).sum();
        prop_assert_eq!(pooled, v.iter().sum::<u64>());
    }

    /// Min and max reductions equal the plain serial fold exactly (they are
    /// order-independent, so this holds bitwise at any thread count).
    fn min_and_max_equal_the_serial_fold(v in proptest::collection::vec(-1.0e6f64..1.0e6, 0..4500)) {
        let min = (0..v.len())
            .into_par_iter()
            .map(|i| v[i])
            .reduce(|| f64::INFINITY, f64::min);
        let max = (0..v.len())
            .into_par_iter()
            .map(|i| v[i])
            .reduce(|| f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(min.to_bits(), v.iter().copied().fold(f64::INFINITY, f64::min).to_bits());
        prop_assert_eq!(
            max.to_bits(),
            v.iter().copied().fold(f64::NEG_INFINITY, f64::max).to_bits()
        );
    }

    /// `par_iter()` over a borrowed slice goes through the same deterministic
    /// lane as ranges: pooled and serial f64 sums agree bit-for-bit, and both
    /// agree with the equivalent indexed-range sum (the chunking depends only
    /// on the length, not on how the elements are addressed).
    fn slice_par_iter_sum_is_bitwise_stable(v in proptest::collection::vec(-1.0e9f64..1.0e9, 0..4500)) {
        let pooled: f64 = v.par_iter().map(|&x| x).sum();
        let serial: f64 = serially(|| v.par_iter().map(|&x| x).sum());
        let ranged: f64 = (0..v.len()).into_par_iter().map(|i| v[i]).sum();
        prop_assert_eq!(pooled.to_bits(), serial.to_bits());
        prop_assert_eq!(pooled.to_bits(), ranged.to_bits());
    }

    /// The fold lane chunks exactly like the reduce lane: a
    /// `fold(..).reduce(..)` sum is bitwise-identical to the `map(..).sum()`
    /// of the same data, pooled or serial.
    fn fold_reduce_matches_the_sum_lane_bitwise(v in proptest::collection::vec(-1.0e6f64..1.0e6, 0..4500)) {
        let folded: f64 = v
            .par_iter()
            .fold(|| 0.0f64, |acc, &x| acc + x)
            .reduce(|| 0.0, |a, b| a + b);
        let serial: f64 = serially(|| {
            v.par_iter()
                .fold(|| 0.0f64, |acc, &x| acc + x)
                .reduce(|| 0.0, |a, b| a + b)
        });
        let summed: f64 = v.par_iter().map(|&x| x).sum();
        prop_assert_eq!(folded.to_bits(), serial.to_bits());
        prop_assert_eq!(folded.to_bits(), summed.to_bits());
    }

    /// Folding with a non-trivial accumulator (count + sum pairs) sees every
    /// element exactly once at any thread count.
    fn fold_visits_every_element_once(v in proptest::collection::vec(0u64..1_000, 0..4500)) {
        let (count, total) = v
            .par_iter()
            .fold(|| (0u64, 0u64), |(c, s), &x| (c + 1, s + x))
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        prop_assert_eq!(count, v.len() as u64);
        prop_assert_eq!(total, v.iter().sum::<u64>());
    }

    /// Non-commutative reductions (string-order concatenation length model)
    /// still see every element exactly once, in chunk order.
    fn reduce_visits_every_element_once(len in 0usize..6000) {
        let count: u64 = (0..len as u64).into_par_iter().map(|_| 1u64).sum();
        prop_assert_eq!(count, len as u64);
        let sum: u64 = (0..len as u64).into_par_iter().map(|i| i).sum();
        prop_assert_eq!(sum, (len as u64) * (len as u64).saturating_sub(1) / 2);
    }
}

#[test]
fn empty_input_returns_the_identity() {
    let sum: f64 = (0..0u64).into_par_iter().map(|i| i as f64).sum();
    assert_eq!(sum.to_bits(), 0.0f64.to_bits());
    let min = (0..0u64)
        .into_par_iter()
        .map(|i| i as f64)
        .reduce(|| f64::INFINITY, f64::min);
    assert_eq!(min, f64::INFINITY);
}

#[test]
fn single_element_input_folds_once_with_the_identity() {
    let value = 0.1f64;
    let sum: f64 = (0..1u64).into_par_iter().map(|_| value).sum();
    assert_eq!(sum.to_bits(), (0.0f64 + value).to_bits());
    let serial: f64 = serially(|| (0..1u64).into_par_iter().map(|_| value).sum());
    assert_eq!(sum.to_bits(), serial.to_bits());
}

#[test]
fn chunk_boundary_lengths_are_bitwise_stable() {
    // Exercise lengths around multiples of the lane's chunk width, where the
    // grouping changes shape.
    for len in [
        1023usize, 1024, 1025, 2047, 2048, 2049, 4095, 4096, 4097, 10_000,
    ] {
        let f = |i: usize| 1.0f64 / (i as f64 + 0.5);
        let pooled: f64 = (0..len).into_par_iter().map(f).sum();
        let serial: f64 = serially(|| (0..len).into_par_iter().map(f).sum());
        assert_eq!(pooled.to_bits(), serial.to_bits(), "len {len}");
    }
}
