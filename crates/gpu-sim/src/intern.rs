//! Interned strings for the steady-state hot path.
//!
//! Every workload run labels its results — backend, device, kernel,
//! verification summary — and those labels are drawn from a small, stable set
//! ("Mojo", "NVIDIA H100", "laplacian", `passed(max_abs_err=…)` for a
//! deterministic error…). Carrying them as `String` puts a heap allocation on
//! every run; [`IStr`] instead shares one `Arc<str>` per distinct text
//! through a process-wide interner. The first occurrence allocates; every
//! later occurrence is a hash lookup plus an `Arc` clone — zero allocator
//! traffic, which is what lets repeated launches satisfy the
//! `alloc_steady_state` contract (DESIGN.md §11).
//!
//! [`IStr`] deliberately serialises exactly like `String` (a JSON string), so
//! swapping it into report types leaves every committed golden byte-identical.

use serde::value::{Error, Value};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt::{self, Write as _};
use std::sync::{Arc, Mutex, OnceLock};

/// The process-wide intern table. `Arc<str>: Borrow<str>` lets warm lookups
/// hash the borrowed text without constructing a key.
static INTERNER: OnceLock<Mutex<HashSet<Arc<str>>>> = OnceLock::new();

/// An interned, immutable string: cheap to clone, cheap to compare, and
/// allocation-free after its first occurrence.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IStr(Arc<str>);

/// Interns `text`, returning the shared handle for it.
pub fn istr(text: &str) -> IStr {
    let mut table = INTERNER
        .get_or_init(Default::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if let Some(existing) = table.get(text) {
        return IStr(Arc::clone(existing));
    }
    let shared: Arc<str> = Arc::from(text);
    table.insert(Arc::clone(&shared));
    IStr(shared)
}

/// Formats into a thread-local reusable buffer, then interns the result:
/// `istr_fmt(format_args!(…))` is the allocation-free-when-warm replacement
/// for `format!(…)` on strings whose rendered text repeats across runs.
pub fn istr_fmt(args: fmt::Arguments<'_>) -> IStr {
    thread_local! {
        static BUF: RefCell<String> = const { RefCell::new(String::new()) };
    }
    BUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        buf.clear();
        buf.write_fmt(args).expect("formatting into a String");
        istr(&buf)
    })
}

impl IStr {
    /// The interned text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::ops::Deref for IStr {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for IStr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::borrow::Borrow<str> for IStr {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for IStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&*self.0, f)
    }
}

impl Default for IStr {
    fn default() -> Self {
        istr("")
    }
}

impl From<&str> for IStr {
    fn from(text: &str) -> Self {
        istr(text)
    }
}

impl From<&String> for IStr {
    fn from(text: &String) -> Self {
        istr(text)
    }
}

impl From<String> for IStr {
    fn from(text: String) -> Self {
        istr(&text)
    }
}

impl PartialEq<str> for IStr {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for IStr {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for IStr {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl PartialEq<IStr> for &str {
    fn eq(&self, other: &IStr) -> bool {
        *self == &*other.0
    }
}

impl PartialEq<IStr> for String {
    fn eq(&self, other: &IStr) -> bool {
        self.as_str() == &*other.0
    }
}

impl Serialize for IStr {
    fn to_value(&self) -> Value {
        Value::Str(self.0.to_string())
    }
}

impl Deserialize for IStr {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(istr(s)),
            other => Err(Error::new(format!("expected string, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_shares_one_allocation_per_distinct_text() {
        let a = istr("NVIDIA H100");
        let b = istr("NVIDIA H100");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        let c = istr("AMD MI300A");
        assert!(!Arc::ptr_eq(&a.0, &c.0));
    }

    #[test]
    fn comparisons_match_str_semantics() {
        let s = istr("Mojo");
        assert_eq!(s, "Mojo");
        assert_eq!("Mojo", s);
        assert_eq!(s, String::from("Mojo"));
        assert_ne!(s, "CUDA");
        assert_eq!(s.len(), 4);
        assert!(s.starts_with("Mo"));
    }

    #[test]
    fn istr_fmt_reuses_the_interned_text_for_repeated_renders() {
        let a = istr_fmt(format_args!("passed(max_abs_err={:.3e})", 1.25e-9));
        let b = istr_fmt(format_args!("passed(max_abs_err={:.3e})", 1.25e-9));
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, "passed(max_abs_err=1.250e-9)");
    }

    #[test]
    fn serialises_exactly_like_string() {
        let s = istr("CUDA fast-math");
        assert_eq!(s.to_value(), String::from("CUDA fast-math").to_value());
        let back = IStr::from_value(&s.to_value()).expect("roundtrip");
        assert_eq!(back, s);
    }

    #[test]
    fn hashes_like_the_borrowed_text() {
        use std::collections::HashMap;
        let mut map: HashMap<IStr, u32> = HashMap::new();
        map.insert(istr("fasten"), 7);
        assert_eq!(map.get("fasten"), Some(&7));
    }
}
