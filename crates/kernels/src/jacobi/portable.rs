//! Portable (Mojo-style) Jacobi solver implementation.
//!
//! The multi-pass composite pattern of DESIGN.md §15: the device relaxes the
//! grid sweep by sweep through ping-ponged `LayoutTensor`s — one launch per
//! iteration, exactly as a real single-source port would — and the host runs
//! the convergence-norm reduction between launches. The number of sweeps is
//! fixed by the memoized deterministic reference solve, so every lane and
//! every thread count executes the same launch sequence.

use super::config::{JacobiConfig, SIXTH};
use super::cost::jacobi_cost;
use super::reference::residual_rms;
use crate::cache;
use crate::common::{compare_with_reference, Verification, WorkloadRun};
use crate::simd::{self, Lane, LanePolicy};
use gpu_sim::{istr, istr_fmt, SimError};
use portable_kernel::prelude::*;
use vendor_models::{heuristics, KernelClass, Platform};

/// The portable Jacobi sweep body: replaces one interior cell with the
/// average of its six face neighbours (the same expression, in the same
/// association, as the host lanes and the CPU reference).
#[inline]
fn jacobi_kernel(
    t: ThreadCtx,
    f: &LayoutTensor<f64>,
    u: &LayoutTensor<f64>,
    nx: usize,
    ny: usize,
    nz: usize,
) {
    let k = t.global_x() as usize;
    let j = t.global_y() as usize;
    let i = t.global_z() as usize;
    if i > 0 && i < nx - 1 && j > 0 && j < ny - 1 && k > 0 && k < nz - 1 {
        let value = (((u.get3(i - 1, j, k) + u.get3(i + 1, j, k))
            + (u.get3(i, j - 1, k) + u.get3(i, j + 1, k)))
            + (u.get3(i, j, k - 1) + u.get3(i, j, k + 1)))
            * SIXTH;
        f.set3(i, j, k, value);
    }
}

/// Runs the portable Jacobi solve on `platform` under the process-wide lane
/// policy.
pub fn run_portable(platform: &Platform, config: &JacobiConfig) -> Result<WorkloadRun, SimError> {
    run_portable_lane(platform, config, simd::process_policy())
}

/// Runs the portable Jacobi solve under an explicit lane policy. The lane
/// picks the host verification scan and the convergence-norm reduction; the
/// sweep itself is bitwise-identical on every lane.
pub fn run_portable_lane(
    platform: &Platform,
    config: &JacobiConfig,
    policy: LanePolicy,
) -> Result<WorkloadRun, SimError> {
    let iters = super::planned_iters(config);
    let cost = jacobi_cost(config, iters);
    let class = KernelClass::Stencil7 {
        precision: gpu_spec::Precision::Fp64,
    };
    let profile = platform.execution_profile(&class);
    let timing = cache::timing_model(platform).estimate(&cost, &profile);
    let lane = simd::resolve(policy, simd::KERNEL_JACOBI, config.l as u64);

    let verification = if config.should_execute() {
        execute(platform, config, lane)?
    } else {
        Verification::Skipped {
            reason: istr_fmt(format_args!(
                "L = {} exceeds the functional-execution limit; cost model only",
                config.l
            )),
        }
    };

    Ok(WorkloadRun {
        backend: profile.backend.clone(),
        device: istr(&platform.spec.name),
        kernel: istr("jacobi"),
        cost,
        profile,
        timing,
        verification,
    })
}

fn execute(
    platform: &Platform,
    config: &JacobiConfig,
    lane: Lane,
) -> Result<Verification, SimError> {
    let l = config.l;
    let layout = Layout::row_major_3d(l, l, l);
    let seed = cache::stencil_grid(&super::reference::seed_config(config));
    let reference = cache::jacobi_reference(config);

    let ctx = DeviceContext::from_device(cache::device(platform));
    // Both ping-pong buffers start from the seed so the untouched boundary
    // carries the Dirichlet data in either of them.
    let d_u = ctx.enqueue_create_buffer_from(&seed)?;
    let d_f = ctx.enqueue_create_buffer_from(&seed)?;
    let mut u_tensor = LayoutTensor::new(d_u, layout)?;
    let mut f_tensor = LayoutTensor::new(d_f, layout)?;

    let launch = heuristics::stencil_launch(l as u32, config.block_x);
    for _ in 0..reference.iters_run {
        let (f_k, u_k) = (f_tensor.clone(), u_tensor.clone());
        ctx.enqueue_function(launch, move |t| {
            jacobi_kernel(t, &f_k, &u_k, l, l, l);
        })?;
        ctx.synchronize();
        std::mem::swap(&mut u_tensor, &mut f_tensor);
    }

    // After the final swap `u_tensor` holds the last iterate and `f_tensor`
    // the one before it; the final residual recomputes from the pair.
    let mut actual: PooledVec<f64> = PooledVec::new();
    u_tensor.to_host_into(&mut actual);
    let mut previous: PooledVec<f64> = PooledVec::new();
    f_tensor.to_host_into(&mut previous);

    // Device and reference run the same f64 expression in the same order, so
    // the grids agree bitwise; the f64 driver tolerance guards the compare.
    let tolerance = <f64 as crate::real::Real>::tolerance();
    let compared = match lane {
        Lane::Deterministic => compare_with_reference(&actual, &reference.grid, tolerance),
        Lane::Simd => simd::compare_with_reference_unrolled(&actual, &reference.grid, tolerance),
    };
    let max_abs_error = compared
        .map_err(|msg| SimError::InvalidParameter(format!("jacobi verification failed: {msg}")))?;

    let residual = residual_rms(&actual, &previous, config.interior_cells() as f64, lane);
    let golden = reference.residuals[reference.iters_run - 1];
    let rel = (residual - golden).abs() / golden.abs().max(1e-300);
    if rel > 1e-12 {
        return Err(SimError::InvalidParameter(format!(
            "jacobi residual mismatch: device-path norm {residual:.17e} vs reference \
             {golden:.17e} (relative {rel:.3e})"
        )));
    }

    Ok(Verification::Passed { max_abs_error })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_jacobi_matches_the_reference_bitwise() {
        let config = JacobiConfig::validation(12, 200);
        let run = run_portable(&Platform::portable_h100(), &config).unwrap();
        match run.verification {
            Verification::Passed { max_abs_error } => assert_eq!(max_abs_error, 0.0),
            other => panic!("expected verification, got {other:?}"),
        }
    }

    #[test]
    fn simd_lane_verifies_too() {
        let config = JacobiConfig::validation(10, 150);
        let run =
            run_portable_lane(&Platform::portable_mi300a(), &config, LanePolicy::Simd).unwrap();
        assert!(run.verification.is_verified());
    }

    #[test]
    fn large_problems_skip_functional_execution_but_still_time() {
        let config = JacobiConfig::paper(128, 500);
        let run = run_portable(&Platform::portable_h100(), &config).unwrap();
        assert!(!run.verification.is_verified());
        assert!(run.seconds() > 0.0);
    }
}
