//! Command-line interface of the `mojo-hpc` binary.
//!
//! Subcommands:
//!
//! * `list` — print every experiment id and its paper caption, plus every
//!   registered workload with its tunable parameters and defaults;
//! * `run --all | <experiment>…` — regenerate experiments (renders to
//!   stdout, CSV or JSON files under `--out DIR`, `--format csv|json`);
//! * `run hartree-fock --atoms N` — sharded/sampled functional validation of
//!   the Hartree–Fock kernel at any system size;
//! * `sweep <workload> --sizes a,b,c` — run any registered workload at
//!   custom problem sizes (with optional `key=value` parameter overrides);
//!   `--preset-out FILE` saves the resolved configuration, `--preset FILE`
//!   replays one;
//! * `shard (run|sweep) … --workers N` — coordinator: spawn `N` worker
//!   subprocesses of this binary, one shard each, and merge their partial
//!   JSON documents into output byte-identical to a single-process run
//!   (protocol: DESIGN.md §10);
//! * `--shard I/N` on `run`/`sweep` — worker mode: execute shard `I` of the
//!   command's work items and print a partial-report shard document;
//! * `serve --listen HOST:PORT` — the always-on TCP report service: caches
//!   results under the stable `Params` encoding, coalesces identical
//!   concurrent requests single-flight, and spills big sweeps through the
//!   launcher layer (protocol: DESIGN.md §13);
//! * `diff <dir-a> <dir-b>` — byte-compare the `.csv` and `.json` report
//!   files of two directories;
//! * `bench-diff <a> <b> [--max-regression PCT]` — compare bench JSON
//!   records, optionally failing on mean-time regressions beyond PCT percent
//!   (dispatched by the binary to the bench crate; only parsed here).
//!
//! Exit codes: `0` success, `1` difference found or validation failed, `2`
//! usage error. All diagnostics go to stderr; stdout carries only the
//! deterministic experiment renderings, so `run` and `sweep` output can be
//! compared byte-for-byte across runs, thread counts and worker counts.

use crate::chaos;
use crate::dispatch::{self, DispatchPolicy, HostManifest, Launcher, LocalLauncher};
use crate::registry::{known_ids, run_experiments, ExperimentId, EXPERIMENTS};
use crate::report::ExperimentReport;
use crate::serve::{self, ServeConfig};
use crate::shard::{self, ShardDocument, ShardManifest, ShardPoolCounters, ShardSpec};
use crate::sweep::{run_sweep, SweepSpec};
use hpc_metrics::output::{self, CsvTable};
use science_kernels::hartree_fock::{
    run_sampled, HartreeFockConfig, SampledValidation, DEFAULT_SAMPLES, DEFAULT_SHARDS,
};
use science_kernels::simd::{self, LanePolicy};
use science_kernels::workload;
use std::path::{Path, PathBuf};
use std::time::Duration;
use vendor_models::Platform;

/// Output rendering of `run` and `sweep`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable console text plus CSV files (the default).
    #[default]
    Csv,
    /// A JSON document on stdout plus one JSON file per report.
    Json,
}

impl OutputFormat {
    /// Parses a `--format` value.
    pub fn parse(value: &str) -> Result<OutputFormat, String> {
        match value {
            "csv" => Ok(OutputFormat::Csv),
            "json" => Ok(OutputFormat::Json),
            other => Err(format!("--format: expected csv or json, got '{other}'")),
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `list`: print the registry.
    List,
    /// `run`: regenerate experiments.
    Run(RunArgs),
    /// `run hartree-fock`: sampled functional validation.
    RunHartreeFock(HartreeFockArgs),
    /// `sweep`: run a workload at custom sizes.
    Sweep(SweepArgs),
    /// `shard`: spawn worker subprocesses and merge their shard documents.
    Shard(ShardArgs),
    /// `serve`: run the always-on TCP report service (DESIGN.md §13).
    Serve(ServeConfig),
    /// `diff`: compare two experiment report directories (CSV and JSON).
    Diff {
        /// Baseline directory.
        dir_a: PathBuf,
        /// Compared directory.
        dir_b: PathBuf,
    },
    /// `bench-diff`: compare two bench JSON records (file or directory each).
    BenchDiff {
        /// Baseline record or directory.
        baseline: PathBuf,
        /// Compared record or directory.
        current: PathBuf,
        /// Fail (exit 1) when any benchmark's mean slowed down by more than
        /// this fraction (`--max-regression 10` = +10%); `None` keeps the
        /// comparison informational.
        max_regression: Option<f64>,
    },
    /// `bench-trajectory`: render the per-benchmark mean-time trend across a
    /// directory of archived per-SHA bench snapshots (dispatched by the
    /// binary to the bench crate; only parsed here).
    BenchTrajectory {
        /// Directory whose subdirectories are the archived snapshots
        /// (`bench-trajectory-<sha>` in CI), each holding bench JSON records.
        root: PathBuf,
        /// Optional CSV output path for the trend table.
        csv: Option<PathBuf>,
    },
    /// `help` / `--help`.
    Help,
}

/// Arguments of `run` over registry experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Experiments to regenerate, in presentation order.
    pub ids: Vec<ExperimentId>,
    /// File output directory (`target/experiments` when absent).
    pub out: Option<PathBuf>,
    /// Worker-thread override applied before the pool starts.
    pub threads: Option<usize>,
    /// Output rendering (CSV files + console text, or JSON).
    pub format: OutputFormat,
    /// Worker mode: regenerate only this shard of the id list and print a
    /// shard document instead of reports (DESIGN.md §10).
    pub shard: Option<ShardSpec>,
    /// Kernel-lane policy (`--lane auto|deterministic|simd`, DESIGN.md §14).
    pub lane: LanePolicy,
}

/// Arguments of `sweep`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Registered workload name (absent when `--preset` carries it).
    pub workload: Option<String>,
    /// Values of the workload's size parameter, in presentation order
    /// (absent when `--preset` carries them).
    pub sizes: Option<Vec<u64>>,
    /// `key=value` parameter overrides applied to the workload defaults.
    pub params: Vec<String>,
    /// File output directory (`target/experiments` when absent).
    pub out: Option<PathBuf>,
    /// Worker-thread override applied before the pool starts.
    pub threads: Option<usize>,
    /// Output rendering (CSV files + console text, or JSON).
    pub format: OutputFormat,
    /// Worker mode: run only this shard of the sweep points and print a
    /// shard document instead of a report (DESIGN.md §10).
    pub shard: Option<ShardSpec>,
    /// Preset file to load the full sweep configuration from.
    pub preset: Option<PathBuf>,
    /// File to save the resolved sweep configuration to.
    pub preset_out: Option<PathBuf>,
    /// Kernel-lane policy (`--lane auto|deterministic|simd`, DESIGN.md §14).
    pub lane: LanePolicy,
}

/// How the `shard` coordinator places workers (DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LauncherKind {
    /// Worker subprocesses of this binary on this host (the default).
    #[default]
    Local,
    /// Command-template workers from a `--hosts` manifest (`ssh host -- …`
    /// by default; any argv template, including replay via `cat`).
    Template,
    /// Generate a SLURM-style job-array batch script instead of running
    /// anything; the collected shard documents merge later via a replay
    /// manifest.
    Slurm,
}

impl LauncherKind {
    /// Parses a `--launcher` value (`ssh` is an alias for `template`).
    pub fn parse(value: &str) -> Result<LauncherKind, String> {
        match value {
            "local" => Ok(LauncherKind::Local),
            "template" | "ssh" => Ok(LauncherKind::Template),
            "slurm" => Ok(LauncherKind::Slurm),
            other => Err(format!(
                "--launcher: expected local, template (alias ssh) or slurm, got '{other}'"
            )),
        }
    }
}

/// Arguments of the `shard` coordinator.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardArgs {
    /// Worker subprocess count (= shard count), at least 1.
    pub workers: u64,
    /// How workers are placed ([`LauncherKind::Local`] by default).
    pub launcher: LauncherKind,
    /// Host-manifest file (required for `--launcher template`, optional
    /// node pin for `--launcher slurm`).
    pub hosts: Option<PathBuf>,
    /// Per-worker wall-clock timeout in seconds; a worker exceeding it is
    /// killed and the attempt counts as failed.
    pub timeout: Option<f64>,
    /// Attempt budget per shard (default 3; 0 runs a single attempt and
    /// degrades gracefully on failure).
    pub max_attempts: u32,
    /// Launch speculative duplicates of straggling shards.
    pub speculate: bool,
    /// The wrapped command ([`Command::Run`] or [`Command::Sweep`]) whose
    /// work items the workers partition.
    pub inner: Box<Command>,
}

/// Arguments of `run hartree-fock`.
#[derive(Debug, Clone, PartialEq)]
pub struct HartreeFockArgs {
    /// Helium atom count.
    pub atoms: u32,
    /// Gaussian primitives per atom (paper pairing by default: 6 at 1024
    /// atoms, 3 otherwise).
    pub ngauss: Option<u32>,
    /// Total sampled probes across the quartet space.
    pub samples: u64,
    /// Shard count of the quartet space.
    pub shards: u64,
    /// CSV output directory (`target/experiments` when absent).
    pub out: Option<PathBuf>,
    /// Worker-thread override applied before the pool starts.
    pub threads: Option<usize>,
}

/// The usage text printed on `help` and usage errors.
pub fn usage() -> &'static str {
    "mojo-hpc — regenerate the paper's experiments and validate the kernels

USAGE:
  mojo-hpc list
  mojo-hpc run (--all | <experiment>...) [--out DIR] [--threads N]
                            [--format csv|json] [--shard I/N]
                            [--lane auto|deterministic|simd]
  mojo-hpc run hartree-fock --atoms N [--ngauss G] [--sample N] [--shards N]
                            [--out DIR] [--threads N]
  mojo-hpc sweep <workload> --sizes A,B,C [key=value ...] [--out DIR]
                            [--threads N] [--format csv|json] [--shard I/N]
                            [--preset-out FILE]
                            [--lane auto|deterministic|simd]
  mojo-hpc sweep --preset FILE [--out DIR] [--threads N] [--format csv|json]
                            [--shard I/N] [--lane auto|deterministic|simd]
  mojo-hpc shard (run|sweep) <run/sweep arguments> --workers N
                            [--launcher local|template|slurm] [--hosts FILE]
                            [--timeout SECS] [--max-attempts N] [--speculate]
  mojo-hpc serve --listen HOST:PORT [--threads N] [--cache-entries N]
                            [--cache-bytes N] [--spill-threshold N]
                            [--spill-workers N] [--spill-timeout SECS]
                            [--scratch DIR]
  mojo-hpc diff <dir-a> <dir-b>
  mojo-hpc bench-diff <baseline.json|dir> <current.json|dir>
                            [--max-regression PCT]
  mojo-hpc bench-trajectory <snapshot-dir> [--csv FILE]
  mojo-hpc help

Experiment and sweep renderings go to stdout (byte-identical at every
--threads / RAYON_NUM_THREADS setting); CSV or JSON files land under --out
(default target/experiments); diagnostics go to stderr. `mojo-hpc list`
names every workload with its tunable parameters and defaults; `--sizes`
sweeps the workload's size parameter and `key=value` pins any other.
`--preset-out` saves a resolved sweep configuration to a file; `--preset`
replays it. `bench-diff --max-regression PCT` turns the comparison into a
gate: exit 1 when any benchmark's mean slowed down by more than PCT percent.
`bench-trajectory DIR` walks a directory of archived per-commit bench
snapshots (CI's bench-trajectory-<sha> artifacts) and renders each
benchmark's mean-time trend across them (`--csv FILE` also writes the trend
table as CSV). `run` and `sweep` report the buffer-pool's hit rate and
traffic on stderr after each invocation.

LANES (DESIGN.md \u{a7}14): `--lane` picks the host compute lane:
`deterministic` (default — fixed-tree reductions, byte-identical goldens),
`simd` (hand-unrolled multi-accumulator fast lane, verified against the
same references within documented tolerances), or `auto` (per kernel per
size, whichever the measured crossover table says is fastest; override the
builtin table with MOJO_HPC_CROSSOVER=FILE). `cargo bench --bench crossover`
regenerates the table from measurements on this machine.

SCALE-OUT (DESIGN.md \u{a7}10): `mojo-hpc shard run|sweep ... --workers N`
spawns N worker subprocesses of this binary, partitions the command's work
items (experiments for run, sweep points for sweep) deterministically, and
merges the workers' partial JSON documents into output byte-identical to
the single-process command. `--shard I/N` is the worker-side flag: it runs
shard I and prints a JSON shard document (manifest + partial reports); it
cannot be combined with `--format csv`.

DISPATCHER (DESIGN.md \u{a7}12): workers run under supervision. `--timeout
SECS` kills a worker exceeding the wall clock; `--max-attempts N` retries a
failed shard with exponential backoff on the healthiest launcher (default
3; 0 runs a single attempt and, on failure, reports which ranges completed
before exiting 1); `--speculate` duplicates the slowest straggler (first
completion wins). `--launcher template --hosts FILE` places workers through
a JSON host manifest's command template (ssh by default); `--launcher
slurm` writes a job-array batch script to <out>/slurm_job_array.sbatch
instead of running anything. MOJO_HPC_CHAOS=mode:shard[:attempts] injects
crash/hang/garble/slow faults into workers for harness testing.

SERVE (DESIGN.md \u{a7}13): `mojo-hpc serve --listen HOST:PORT` runs an
always-on TCP service speaking line-delimited JSON: one request per line
({\"cmd\":\"run\"|\"sweep\"|\"stats\"|\"shutdown\", ...}), one JSON header
line per response, followed (for run/sweep) by a payload byte-identical to
that subcommand's stdout. Results are cached in an LRU keyed on the stable
Params encoding (bounded by --cache-entries / --cache-bytes); identical
concurrent requests coalesce onto a single computation; sweeps with at
least --spill-threshold points dispatch through the launcher layer
(--spill-workers subprocesses, optional --spill-timeout). The bound address
is announced on stderr; `stats` reports cache, single-flight and
buffer-pool counters.

EXIT CODES:
  0  success / directories identical
  1  difference found, a validation failed, or a shard worker failed
  2  usage error or unreadable input"
}

/// Parses a command line (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut args = args.iter().map(String::as_str);
    let Some(subcommand) = args.next() else {
        return Err("missing subcommand".to_string());
    };
    let rest: Vec<&str> = args.collect();
    match subcommand {
        "list" => {
            expect_no_args("list", &rest)?;
            Ok(Command::List)
        }
        "run" => parse_run(&rest),
        "sweep" => parse_sweep(&rest),
        "shard" => parse_shard(&rest),
        "serve" => parse_serve(&rest),
        "diff" => {
            let [a, b] = two_paths("diff", &rest)?;
            Ok(Command::Diff { dir_a: a, dir_b: b })
        }
        "bench-diff" => parse_bench_diff(&rest),
        "bench-trajectory" => parse_bench_trajectory(&rest),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn expect_no_args(subcommand: &str, rest: &[&str]) -> Result<(), String> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(format!("'{subcommand}' takes no arguments"))
    }
}

fn two_paths(subcommand: &str, rest: &[&str]) -> Result<[PathBuf; 2], String> {
    match rest {
        [a, b] => Ok([PathBuf::from(a), PathBuf::from(b)]),
        _ => Err(format!("'{subcommand}' takes exactly two paths")),
    }
}

/// Parses `bench-diff <a> <b> [--max-regression PCT]`. The percentage is
/// stored as a fraction (10 → 0.10) and must be non-negative.
fn parse_bench_diff(rest: &[&str]) -> Result<Command, String> {
    let mut paths = Vec::new();
    let mut max_regression = None;
    let mut args = rest.iter().copied();
    while let Some(arg) = args.next() {
        match arg {
            "--max-regression" => {
                let value = flag_value("--max-regression", &mut args)?;
                let pct: f64 = parse_number("--max-regression", value)?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err(format!(
                        "--max-regression: expected a non-negative percentage, got '{value}'"
                    ));
                }
                max_regression = Some(pct / 100.0);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown 'bench-diff' argument '{flag}'"))
            }
            path => paths.push(PathBuf::from(path)),
        }
    }
    let [baseline, current]: [PathBuf; 2] = paths
        .try_into()
        .map_err(|_| "'bench-diff' takes exactly two paths".to_string())?;
    Ok(Command::BenchDiff {
        baseline,
        current,
        max_regression,
    })
}

/// Parses `bench-trajectory <dir> [--csv FILE]`.
fn parse_bench_trajectory(rest: &[&str]) -> Result<Command, String> {
    let mut root = None;
    let mut csv = None;
    let mut args = rest.iter().copied();
    while let Some(arg) = args.next() {
        match arg {
            "--csv" => csv = Some(PathBuf::from(flag_value("--csv", &mut args)?)),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown 'bench-trajectory' argument '{flag}'"))
            }
            path => {
                if root.is_some() {
                    return Err("'bench-trajectory' takes exactly one directory".to_string());
                }
                root = Some(PathBuf::from(path));
            }
        }
    }
    let root = root.ok_or_else(|| "'bench-trajectory' needs a snapshot directory".to_string())?;
    Ok(Command::BenchTrajectory { root, csv })
}

/// Parses `serve --listen ADDR [--threads N] [--cache-entries N]
/// [--cache-bytes N] [--spill-threshold N] [--spill-workers N]
/// [--spill-timeout SECS] [--scratch DIR]`.
fn parse_serve(rest: &[&str]) -> Result<Command, String> {
    let mut listen = None;
    let mut config = ServeConfig::new("");
    let mut args = rest.iter().copied();
    while let Some(arg) = args.next() {
        match arg {
            "--listen" => listen = Some(flag_value("--listen", &mut args)?.to_string()),
            "--threads" => {
                config.threads = Some(parse_threads(flag_value("--threads", &mut args)?)?)
            }
            "--cache-entries" => {
                config.cache_entries =
                    parse_number("--cache-entries", flag_value("--cache-entries", &mut args)?)?
            }
            "--cache-bytes" => {
                config.cache_bytes =
                    parse_number("--cache-bytes", flag_value("--cache-bytes", &mut args)?)?
            }
            "--spill-threshold" => {
                config.spill_threshold = parse_number(
                    "--spill-threshold",
                    flag_value("--spill-threshold", &mut args)?,
                )?
            }
            "--spill-workers" => {
                let workers: u64 =
                    parse_number("--spill-workers", flag_value("--spill-workers", &mut args)?)?;
                if workers == 0 {
                    return Err("--spill-workers must be at least 1".to_string());
                }
                config.spill_workers = workers;
            }
            "--spill-timeout" => {
                let secs: f64 =
                    parse_number("--spill-timeout", flag_value("--spill-timeout", &mut args)?)?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--spill-timeout must be a positive number of seconds".to_string());
                }
                config.spill_timeout = Some(secs);
            }
            "--scratch" => {
                config.scratch = Some(PathBuf::from(flag_value("--scratch", &mut args)?))
            }
            other => return Err(format!("unknown 'serve' argument '{other}'")),
        }
    }
    config.listen = listen.ok_or_else(|| "'serve' needs --listen HOST:PORT".to_string())?;
    Ok(Command::Serve(config))
}

/// Parses the value of a `--flag VALUE` pair.
fn flag_value<'a, I: Iterator<Item = &'a str>>(
    flag: &str,
    args: &mut I,
) -> Result<&'a str, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_number<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: invalid value '{value}'"))
}

/// Parses a `--lane` value (`auto`, `deterministic` or `simd`), rejecting a
/// repeated flag — two `--lane` flags would make the selected policy
/// order-dependent.
fn parse_lane_flag(current: &Option<LanePolicy>, value: &str) -> Result<LanePolicy, String> {
    if current.is_some() {
        return Err("--lane given more than once".to_string());
    }
    value.parse().map_err(|e| format!("--lane: {e}"))
}

/// Parses a `--threads` value, rejecting 0 like the other count flags.
fn parse_threads(value: &str) -> Result<usize, String> {
    let threads: usize = parse_number("--threads", value)?;
    if threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    Ok(threads)
}

/// Parses a `--shard` value, rejecting a repeated flag (two `--shard` flags
/// would make the worker's coverage ambiguous — overlapping specs are a
/// usage error).
fn parse_shard_flag(current: &Option<ShardSpec>, value: &str) -> Result<ShardSpec, String> {
    if current.is_some() {
        return Err("--shard given more than once (shards must not overlap)".to_string());
    }
    ShardSpec::parse(value)
}

/// Rejects the `--shard I/N` + `--format csv` combination: a shard worker's
/// stdout is always one JSON shard document.
fn check_shard_format(
    shard: &Option<ShardSpec>,
    explicit_format: Option<OutputFormat>,
) -> Result<OutputFormat, String> {
    if shard.is_some() && explicit_format == Some(OutputFormat::Csv) {
        return Err(
            "--shard workers emit a JSON shard document; --format csv cannot be combined \
             with --shard (the coordinator renders CSV after merging)"
                .to_string(),
        );
    }
    Ok(explicit_format.unwrap_or_default())
}

fn parse_run(rest: &[&str]) -> Result<Command, String> {
    if rest.first() == Some(&"hartree-fock") {
        return parse_run_hartree_fock(&rest[1..]);
    }
    let mut ids = Vec::new();
    let mut all = false;
    let mut out = None;
    let mut threads = None;
    let mut format = None;
    let mut shard = None;
    let mut lane = None;
    let mut args = rest.iter().copied();
    while let Some(arg) = args.next() {
        match arg {
            "--all" => all = true,
            "--out" => out = Some(PathBuf::from(flag_value("--out", &mut args)?)),
            "--threads" => threads = Some(parse_threads(flag_value("--threads", &mut args)?)?),
            "--format" => format = Some(OutputFormat::parse(flag_value("--format", &mut args)?)?),
            "--shard" => shard = Some(parse_shard_flag(&shard, flag_value("--shard", &mut args)?)?),
            "--lane" => lane = Some(parse_lane_flag(&lane, flag_value("--lane", &mut args)?)?),
            flag if flag.starts_with('-') => return Err(format!("unknown flag '{flag}'")),
            id => ids.push(
                id.parse::<ExperimentId>()
                    .map_err(|e| format!("{e}\nknown ids: {}", known_ids()))?,
            ),
        }
    }
    if all {
        if !ids.is_empty() {
            return Err("pass either --all or explicit experiment ids, not both".to_string());
        }
        ids = ExperimentId::ALL.to_vec();
    } else if ids.is_empty() {
        return Err("'run' needs --all or at least one experiment id".to_string());
    }
    let format = check_shard_format(&shard, format)?;
    Ok(Command::Run(RunArgs {
        ids,
        out,
        threads,
        format,
        shard,
        lane: lane.unwrap_or_default(),
    }))
}

/// Parses a `--sizes` value: comma-separated positive integers.
fn parse_sizes(value: &str) -> Result<Vec<u64>, String> {
    let sizes: Vec<u64> = value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse::<u64>()
                .map_err(|_| format!("--sizes: invalid size '{s}'"))
        })
        .collect::<Result<_, _>>()?;
    if sizes.is_empty() {
        return Err("--sizes needs at least one value".to_string());
    }
    Ok(sizes)
}

/// The comma-separated list of every registered workload name.
fn known_workloads() -> String {
    workload::known_names()
}

fn parse_sweep(rest: &[&str]) -> Result<Command, String> {
    let mut name = None;
    let mut sizes = None;
    let mut params = Vec::new();
    let mut out = None;
    let mut threads = None;
    let mut format = None;
    let mut shard = None;
    let mut preset = None;
    let mut preset_out = None;
    let mut lane = None;
    let mut args = rest.iter().copied();
    while let Some(arg) = args.next() {
        match arg {
            "--sizes" => sizes = Some(parse_sizes(flag_value("--sizes", &mut args)?)?),
            "--out" => out = Some(PathBuf::from(flag_value("--out", &mut args)?)),
            "--threads" => threads = Some(parse_threads(flag_value("--threads", &mut args)?)?),
            "--format" => format = Some(OutputFormat::parse(flag_value("--format", &mut args)?)?),
            "--shard" => shard = Some(parse_shard_flag(&shard, flag_value("--shard", &mut args)?)?),
            "--lane" => lane = Some(parse_lane_flag(&lane, flag_value("--lane", &mut args)?)?),
            "--preset" => preset = Some(PathBuf::from(flag_value("--preset", &mut args)?)),
            "--preset-out" => {
                preset_out = Some(PathBuf::from(flag_value("--preset-out", &mut args)?))
            }
            assignment if assignment.contains('=') && !assignment.starts_with('-') => {
                params.push(assignment.to_string());
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown 'sweep' argument '{flag}'"))
            }
            workload_name => {
                if name.is_some() {
                    return Err(format!(
                        "'sweep' takes one workload name, got a second: '{workload_name}'"
                    ));
                }
                name = Some(workload_name.to_string());
            }
        }
    }
    if preset.is_some() {
        if name.is_some() || sizes.is_some() || !params.is_empty() {
            return Err(
                "--preset pins the workload, sizes and parameters; pass either \
                 --preset FILE or <workload> --sizes A,B,C [key=value ...]"
                    .to_string(),
            );
        }
    } else {
        if name.is_none() {
            return Err(format!(
                "'sweep' needs a workload name (known: {})",
                known_workloads()
            ));
        }
        if sizes.is_none() {
            return Err("'sweep' needs --sizes A,B,C".to_string());
        }
    }
    let format = check_shard_format(&shard, format)?;
    Ok(Command::Sweep(SweepArgs {
        workload: name,
        sizes,
        params,
        out,
        threads,
        format,
        shard,
        preset,
        preset_out,
        lane: lane.unwrap_or_default(),
    }))
}

/// Parses `shard (run|sweep) … --workers N [dispatcher flags]`: extract the
/// coordinator's own flags, delegate the rest to the wrapped subcommand's
/// parser, and reject combinations the coordinator owns (`--shard` on the
/// inner command; `--hosts` without a host-driven launcher).
fn parse_shard(rest: &[&str]) -> Result<Command, String> {
    let mut workers = None;
    let mut launcher = LauncherKind::default();
    let mut hosts = None;
    let mut timeout = None;
    let mut max_attempts = 3u32;
    let mut speculate = false;
    let mut inner_args: Vec<&str> = Vec::new();
    let mut args = rest.iter().copied();
    while let Some(arg) = args.next() {
        match arg {
            "--workers" => {
                workers = Some(parse_number::<u64>(
                    "--workers",
                    flag_value("--workers", &mut args)?,
                )?);
            }
            "--launcher" => {
                launcher = LauncherKind::parse(flag_value("--launcher", &mut args)?)?;
            }
            "--hosts" => hosts = Some(PathBuf::from(flag_value("--hosts", &mut args)?)),
            "--timeout" => {
                let secs: f64 = parse_number("--timeout", flag_value("--timeout", &mut args)?)?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--timeout must be a positive number of seconds".to_string());
                }
                timeout = Some(secs);
            }
            "--max-attempts" => {
                max_attempts = parse_number::<u32>(
                    "--max-attempts",
                    flag_value("--max-attempts", &mut args)?,
                )?;
            }
            "--speculate" => speculate = true,
            other => inner_args.push(other),
        }
    }
    let workers = workers.ok_or_else(|| "'shard' needs --workers N".to_string())?;
    if workers == 0 {
        return Err("--workers must be at least 1".to_string());
    }
    match launcher {
        LauncherKind::Template if hosts.is_none() => {
            return Err("--launcher template needs --hosts FILE".to_string());
        }
        LauncherKind::Local if hosts.is_some() => {
            return Err(
                "--hosts drives the template/slurm launchers; pass --launcher template \
                 (or slurm) with it"
                    .to_string(),
            );
        }
        _ => {}
    }
    let inner = match inner_args.split_first() {
        Some((&"run", tail)) => parse_run(tail)?,
        Some((&"sweep", tail)) => parse_sweep(tail)?,
        _ => {
            return Err(
                "'shard' wraps 'run' or 'sweep' (e.g. shard run --all --workers 3)".to_string(),
            )
        }
    };
    match &inner {
        Command::Run(args) if args.shard.is_some() => Err(
            "--shard is assigned by the shard coordinator; pass --workers N instead".to_string(),
        ),
        Command::Sweep(args) if args.shard.is_some() => Err(
            "--shard is assigned by the shard coordinator; pass --workers N instead".to_string(),
        ),
        Command::Run(_) | Command::Sweep(_) => Ok(Command::Shard(ShardArgs {
            workers,
            launcher,
            hosts,
            timeout,
            max_attempts,
            speculate,
            inner: Box::new(inner),
        })),
        _ => Err("'shard' wraps 'run' or 'sweep' (run hartree-fock shards internally)".to_string()),
    }
}

fn parse_run_hartree_fock(rest: &[&str]) -> Result<Command, String> {
    let mut atoms = None;
    let mut ngauss = None;
    let mut samples = DEFAULT_SAMPLES;
    let mut shards = DEFAULT_SHARDS;
    let mut out = None;
    let mut threads = None;
    let mut args = rest.iter().copied();
    while let Some(arg) = args.next() {
        match arg {
            "--atoms" => atoms = Some(parse_number("--atoms", flag_value("--atoms", &mut args)?)?),
            "--ngauss" => {
                ngauss = Some(parse_number(
                    "--ngauss",
                    flag_value("--ngauss", &mut args)?,
                )?)
            }
            "--sample" => {
                samples = parse_number("--sample", flag_value("--sample", &mut args)?)?;
            }
            "--shards" => shards = parse_number("--shards", flag_value("--shards", &mut args)?)?,
            "--out" => out = Some(PathBuf::from(flag_value("--out", &mut args)?)),
            "--threads" => threads = Some(parse_threads(flag_value("--threads", &mut args)?)?),
            other => return Err(format!("unknown 'run hartree-fock' argument '{other}'")),
        }
    }
    let atoms = atoms.ok_or_else(|| "'run hartree-fock' needs --atoms N".to_string())?;
    if atoms == 0 {
        return Err("--atoms must be at least 1".to_string());
    }
    if samples == 0 {
        return Err("--sample must be at least 1".to_string());
    }
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    Ok(Command::RunHartreeFock(HartreeFockArgs {
        atoms,
        ngauss,
        samples,
        shards,
        out,
        threads,
    }))
}

/// Applies a `--threads` override. Must run before the first parallel call
/// of the process — the worker pool reads `RAYON_NUM_THREADS` once, when it
/// is first used.
fn apply_threads(threads: Option<usize>) {
    if let Some(n) = threads {
        std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    }
}

/// Applies a `--lane` policy process-wide. Like [`apply_threads`], must run
/// before the first kernel call of the process — the paper-experiment
/// builders read the process policy when they run (DESIGN.md §14).
fn apply_lane(lane: LanePolicy) {
    simd::set_process_policy(lane);
}

/// Reports the buffer-pool activity since `before` on stderr — stdout stays
/// byte-identical to the golden renderings (DESIGN.md §11 telemetry).
fn report_pool_telemetry(before: &gpu_sim::PoolStats) {
    let delta = gpu_sim::pool::stats().since(before);
    if delta.checkouts == 0 {
        return;
    }
    eprintln!(
        "pool: {} checkout(s), {:.1}% hit rate, {} B recycled, {} B fresh, high water {} B",
        delta.checkouts,
        delta.hit_rate() * 100.0,
        delta.recycled_bytes,
        delta.fresh_bytes,
        gpu_sim::pool::stats().high_water_bytes,
    );
}

/// Executes a parsed command, returning the process exit code.
///
/// `BenchDiff` is not handled here — the bench crate sits above this one, so
/// the binary dispatches it; passing it in is a programming error.
pub fn execute(command: &Command) -> i32 {
    match command {
        Command::List => {
            execute_list();
            0
        }
        Command::Run(args) => execute_run(args),
        Command::RunHartreeFock(args) => execute_hartree_fock(args),
        Command::Sweep(args) => execute_sweep(args),
        Command::Shard(args) => execute_shard(args),
        Command::Serve(config) => execute_serve(config),
        Command::Diff { dir_a, dir_b } => execute_diff(dir_a, dir_b),
        Command::BenchDiff { .. } | Command::BenchTrajectory { .. } => {
            unreachable!("bench-diff and bench-trajectory are dispatched by the binary")
        }
        Command::Help => {
            println!("{}", usage());
            0
        }
    }
}

/// Runs the always-on report service until a `shutdown` request arrives.
fn execute_serve(config: &ServeConfig) -> i32 {
    apply_threads(config.threads);
    match serve::serve(config) {
        Ok(()) => 0,
        Err(err) => {
            eprintln!("error: {err}");
            1
        }
    }
}

/// Prints the experiment registry and every workload with its parameters.
fn execute_list() {
    println!("experiments (mojo-hpc run <id>):");
    for spec in &EXPERIMENTS {
        let preset = match spec.workload {
            Some(p) => format!("  [workload: {}]", p.workload),
            None => String::new(),
        };
        println!("  {:<8} {}{preset}", spec.name, spec.title);
    }
    println!();
    println!("workloads (mojo-hpc sweep <workload> --sizes A,B,C [key=value ...]):");
    for engine in workload::all() {
        println!("  {:<22} {}", engine.name(), engine.description());
        println!(
            "  {:<22} fom: {}; sweep axis: {}",
            "",
            engine.fom_label(),
            engine.size_param()
        );
        for spec in engine.params() {
            println!(
                "      {:<18} {}",
                format!("{}={}", spec.name, spec.default),
                spec.help
            );
        }
    }
}

/// Writes a report's files (CSV tables or the JSON document) under `dir`,
/// echoing the paths to stderr. Returns false on an I/O failure.
fn write_report_files(report: &ExperimentReport, dir: &Path, format: OutputFormat) -> bool {
    match format {
        OutputFormat::Csv => match report.write_csv_files_to(dir) {
            Ok(paths) => {
                for path in paths {
                    eprintln!("  [csv] {}", path.display());
                }
                true
            }
            Err(err) => {
                eprintln!("failed to write CSV for {}: {err}", report.id);
                false
            }
        },
        OutputFormat::Json => match report.write_json_file_to(dir) {
            Ok(path) => {
                eprintln!("  [json] {}", path.display());
                true
            }
            Err(err) => {
                eprintln!("failed to write JSON for {}: {err}", report.id);
                false
            }
        },
    }
}

/// Prints `run` reports in the requested format and writes their files —
/// the shared tail of the single-process and sharded `run` lanes, so both
/// produce identical stdout and files.
fn emit_run_reports(reports: &[ExperimentReport], format: OutputFormat, out_dir: &Path) -> i32 {
    if format == OutputFormat::Json {
        print!("{}", ExperimentReport::render_json_array(reports));
    }
    for report in reports {
        if format == OutputFormat::Csv {
            println!("{}", report.render());
        }
        if !write_report_files(report, out_dir, format) {
            return 1;
        }
    }
    0
}

fn execute_run(args: &RunArgs) -> i32 {
    apply_threads(args.threads);
    apply_lane(args.lane);
    if let Some(spec) = &args.shard {
        return execute_run_shard_worker(args, spec);
    }
    let out_dir = args.out.clone().unwrap_or_else(output::experiments_dir);
    let started = std::time::Instant::now();
    let pool_before = gpu_sim::pool::stats();
    let reports = run_experiments(&args.ids);
    report_pool_telemetry(&pool_before);
    let code = emit_run_reports(&reports, args.format, &out_dir);
    if code != 0 {
        return code;
    }
    eprintln!(
        "regenerated {} experiment(s) in {:.3} s",
        reports.len(),
        started.elapsed().as_secs_f64()
    );
    0
}

/// The worker's pool activity since `before`, for embedding in its shard
/// manifest — `None` when the shard checked nothing out (empty shards add
/// no telemetry).
fn pool_counters_since(before: &gpu_sim::PoolStats) -> Option<ShardPoolCounters> {
    let counters = ShardPoolCounters::since(before);
    (counters.checkouts != 0).then_some(counters)
}

/// Worker mode of `run`: regenerate only this shard of the id list and
/// print a shard document (manifest + partial reports) on stdout. No files
/// are written — the coordinator renders and writes the merged output.
/// Consults the chaos seam first, so the fault-injection harness can
/// perturb exactly this path (DESIGN.md §12).
fn execute_run_shard_worker(args: &RunArgs, spec: &ShardSpec) -> i32 {
    chaos::apply(spec.index);
    let range = spec.range(args.ids.len());
    let subset = &args.ids[range.clone()];
    let pool_before = gpu_sim::pool::stats();
    let reports = if subset.is_empty() {
        Vec::new()
    } else {
        run_experiments(subset)
    };
    let doc = ShardDocument {
        manifest: ShardManifest {
            command: "run".to_string(),
            shard: spec.index,
            shards: spec.total,
            start: range.start as u64,
            count: subset.len() as u64,
            total: args.ids.len() as u64,
            items: subset.iter().map(|id| id.as_str().to_string()).collect(),
            workload: None,
            params: None,
            pool: pool_counters_since(&pool_before),
        },
        reports,
    };
    print!("{}", doc.to_json_pretty());
    0
}

/// Resolves a sweep's full configuration: from `--preset FILE` when given,
/// otherwise from the workload name, `--sizes` and `key=value` overrides.
/// Errors are usage errors (exit 2).
fn resolve_sweep_spec(args: &SweepArgs) -> Result<SweepSpec, String> {
    if let Some(path) = &args.preset {
        return SweepSpec::load_preset(path);
    }
    let name = args
        .workload
        .as_deref()
        .expect("parser requires a workload");
    let engine = workload::find(name)
        .ok_or_else(|| format!("unknown workload '{name}' (known: {})", known_workloads()))?;
    let sizes = args.sizes.clone().expect("parser requires --sizes");
    SweepSpec::new(engine, &args.params, sizes).map_err(|e| e.to_string())
}

/// Prints a sweep report in the requested format and writes its files —
/// shared by the single-process and sharded sweep lanes.
fn emit_sweep_report(report: &ExperimentReport, format: OutputFormat, out_dir: &Path) -> i32 {
    match format {
        OutputFormat::Csv => println!("{}", report.render()),
        OutputFormat::Json => print!("{}", report.to_json_pretty()),
    }
    if !write_report_files(report, out_dir, format) {
        return 1;
    }
    0
}

fn execute_sweep(args: &SweepArgs) -> i32 {
    apply_threads(args.threads);
    apply_lane(args.lane);
    let spec = match resolve_sweep_spec(args) {
        Ok(spec) => spec,
        Err(err) => {
            eprintln!("error: {err}");
            return 2;
        }
    };
    if let Some(path) = &args.preset_out {
        if let Err(err) = spec.write_preset(path) {
            eprintln!("failed to write preset {}: {err}", path.display());
            return 1;
        }
        eprintln!("  [preset] {}", path.display());
    }
    if let Some(shard_spec) = &args.shard {
        return execute_sweep_shard_worker(&spec, shard_spec);
    }
    let started = std::time::Instant::now();
    let pool_before = gpu_sim::pool::stats();
    let report = match run_sweep(&spec) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("sweep failed: {err}");
            return 1;
        }
    };
    report_pool_telemetry(&pool_before);
    let out_dir = args.out.clone().unwrap_or_else(output::experiments_dir);
    let code = emit_sweep_report(&report, args.format, &out_dir);
    if code != 0 {
        return code;
    }
    eprintln!(
        "swept {} over {} size(s) in {:.3} s",
        spec.workload.name(),
        spec.sizes.len(),
        started.elapsed().as_secs_f64()
    );
    0
}

/// Worker mode of `sweep`: run only this shard of the sweep points and
/// print a shard document. The manifest pins the workload name and the base
/// parameter encoding so the coordinator can verify every worker ran the
/// same configuration.
fn execute_sweep_shard_worker(spec: &SweepSpec, shard_spec: &ShardSpec) -> i32 {
    chaos::apply(shard_spec.index);
    let range = shard_spec.range(spec.sizes.len());
    let sizes = spec.sizes[range.clone()].to_vec();
    let pool_before = gpu_sim::pool::stats();
    let reports = if sizes.is_empty() {
        Vec::new()
    } else {
        let sub = SweepSpec {
            workload: spec.workload,
            base: spec.base.clone(),
            sizes: sizes.clone(),
        };
        match run_sweep(&sub) {
            Ok(report) => vec![report],
            Err(err) => {
                eprintln!("sweep failed: {err}");
                return 1;
            }
        }
    };
    let doc = ShardDocument {
        manifest: ShardManifest {
            command: "sweep".to_string(),
            shard: shard_spec.index,
            shards: shard_spec.total,
            start: range.start as u64,
            count: sizes.len() as u64,
            total: spec.sizes.len() as u64,
            items: sizes.iter().map(|s| s.to_string()).collect(),
            workload: Some(spec.workload.name().to_string()),
            params: Some(spec.base.encode()),
            pool: pool_counters_since(&pool_before),
        },
        reports,
    };
    print!("{}", doc.to_json_pretty());
    0
}

/// The `shard` coordinator: place one worker per shard through the
/// configured launcher under the dispatcher's supervision, merge their
/// documents, and render the merged output exactly as the wrapped
/// single-process command would. `--launcher slurm` generates a job-array
/// batch script instead of running workers.
fn execute_shard(args: &ShardArgs) -> i32 {
    match args.inner.as_ref() {
        Command::Run(run_args) => execute_shard_run(args, run_args),
        Command::Sweep(sweep_args) => execute_shard_sweep(args, sweep_args),
        _ => unreachable!("the parser only wraps run and sweep in shard"),
    }
}

/// Builds the launcher fleet a `shard` invocation dispatches through.
/// The local launcher gets one extra slot under `--speculate`, so a
/// duplicate of a straggler never has to wait for the straggler itself to
/// free a slot.
fn build_launchers(args: &ShardArgs) -> Result<Vec<Box<dyn Launcher>>, String> {
    match args.launcher {
        LauncherKind::Local => {
            let slots = args.workers as usize + usize::from(args.speculate);
            Ok(vec![
                Box::new(LocalLauncher::current_exe(slots)?) as Box<dyn Launcher>
            ])
        }
        LauncherKind::Template => {
            let path = args.hosts.as_ref().expect("parser requires --hosts");
            HostManifest::load(path)?.launchers()
        }
        LauncherKind::Slurm => {
            unreachable!("the slurm lane generates a script instead of dispatching")
        }
    }
}

/// The dispatch policy a `shard` invocation's flags select.
fn dispatch_policy(args: &ShardArgs) -> DispatchPolicy {
    DispatchPolicy {
        max_attempts: args.max_attempts,
        timeout: args.timeout.map(Duration::from_secs_f64),
        speculate: args.speculate,
        ..DispatchPolicy::default()
    }
}

/// Writes the SLURM job-array script for `base_args` (one array task per
/// shard; the script appends `--shard $SLURM_ARRAY_TASK_ID/N`) under
/// `out_dir` and echoes its path to stderr.
fn emit_slurm_script(args: &ShardArgs, base_args: &[String], out_dir: &Path) -> i32 {
    let manifest = match &args.hosts {
        Some(path) => match HostManifest::load(path) {
            Ok(manifest) => Some(manifest),
            Err(err) => {
                eprintln!("error: {err}");
                return 2;
            }
        },
        None => None,
    };
    let exe = match std::env::current_exe() {
        Ok(path) => path.display().to_string(),
        Err(err) => {
            eprintln!("error: cannot locate the current executable: {err}");
            return 1;
        }
    };
    let script = dispatch::slurm_job_array_script(&exe, base_args, args.workers, manifest.as_ref());
    let path = out_dir.join("slurm_job_array.sbatch");
    if let Err(err) = std::fs::create_dir_all(out_dir) {
        eprintln!("failed to create {}: {err}", out_dir.display());
        return 1;
    }
    if let Err(err) = std::fs::write(&path, script) {
        eprintln!("failed to write {}: {err}", path.display());
        return 1;
    }
    eprintln!("  [sbatch] {}", path.display());
    0
}

/// Prints the fleet-wide pool telemetry accumulated from the workers'
/// shard manifests — the coordinator-side counterpart of the stderr line
/// `run`/`sweep` print directly (stdout and goldens stay untouched).
fn report_fleet_pool_telemetry(docs: &[ShardDocument]) {
    let mut fleet = ShardPoolCounters::default();
    let mut reporting = 0u64;
    for doc in docs {
        if let Some(pool) = &doc.manifest.pool {
            fleet.accumulate(pool);
            reporting += 1;
        }
    }
    if fleet.checkouts == 0 {
        return;
    }
    eprintln!(
        "pool: {} worker(s), {} checkout(s), {:.1}% hit rate, {} B recycled, {} B fresh, \
         high water {} B",
        reporting,
        fleet.checkouts,
        fleet.hit_rate(),
        fleet.recycled_bytes,
        fleet.fresh_bytes,
        fleet.high_water_bytes,
    );
}

/// Runs the dispatcher over the per-worker argument lists and reports the
/// attempt accounting plus fleet pool telemetry on stderr.
fn dispatch_workers(
    args: &ShardArgs,
    worker_args: &[Vec<String>],
) -> Result<Vec<ShardDocument>, String> {
    let launchers = build_launchers(args)?;
    let tasks = shard::worker_tasks(worker_args);
    let (docs, summary) = dispatch::dispatch(&launchers, &tasks, &dispatch_policy(args))?;
    eprintln!("dispatch: {}", summary.render());
    report_fleet_pool_telemetry(&docs);
    Ok(docs)
}

fn execute_shard_run(shard_args: &ShardArgs, args: &RunArgs) -> i32 {
    let started = std::time::Instant::now();
    let workers = shard_args.workers;
    let out_dir = args.out.clone().unwrap_or_else(output::experiments_dir);
    let mut base = vec!["run".to_string()];
    base.extend(args.ids.iter().map(|id| id.as_str().to_string()));
    if let Some(threads) = args.threads {
        base.push("--threads".to_string());
        base.push(threads.to_string());
    }
    if args.lane != LanePolicy::default() {
        base.push("--lane".to_string());
        base.push(args.lane.label().to_string());
    }
    if shard_args.launcher == LauncherKind::Slurm {
        return emit_slurm_script(shard_args, &base, &out_dir);
    }
    let worker_args: Vec<Vec<String>> = (0..workers)
        .map(|index| {
            let mut argv = base.clone();
            argv.push("--shard".to_string());
            argv.push(format!("{index}/{workers}"));
            argv
        })
        .collect();
    let docs = match dispatch_workers(shard_args, &worker_args) {
        Ok(docs) => docs,
        Err(err) => {
            eprintln!("error: {err}");
            return 1;
        }
    };
    let expected: Vec<String> = args.ids.iter().map(|id| id.as_str().to_string()).collect();
    let reports = match shard::merge_run(&docs, &expected) {
        Ok(reports) => reports,
        Err(err) => {
            eprintln!("merge failed: {err}");
            return 1;
        }
    };
    let code = emit_run_reports(&reports, args.format, &out_dir);
    if code != 0 {
        return code;
    }
    eprintln!(
        "merged {workers} shard(s) covering {} experiment(s) in {:.3} s",
        reports.len(),
        started.elapsed().as_secs_f64()
    );
    0
}

fn execute_shard_sweep(shard_args: &ShardArgs, args: &SweepArgs) -> i32 {
    let started = std::time::Instant::now();
    let workers = shard_args.workers;
    let spec = match resolve_sweep_spec(args) {
        Ok(spec) => spec,
        Err(err) => {
            eprintln!("error: {err}");
            return 2;
        }
    };
    if let Some(path) = &args.preset_out {
        if let Err(err) = spec.write_preset(path) {
            eprintln!("failed to write preset {}: {err}", path.display());
            return 1;
        }
        eprintln!("  [preset] {}", path.display());
    }
    // Pin the resolved configuration in a preset file every worker loads, so
    // all workers provably share one configuration. It lives under the run's
    // own output directory, not the shared temp dir — a predictable path in
    // a world-writable directory would be open to symlink/rewrite games by
    // other local users.
    let out_dir = args.out.clone().unwrap_or_else(output::experiments_dir);
    if shard_args.launcher == LauncherKind::Slurm {
        // Array tasks run later, possibly on other machines: the preset must
        // outlive this process at a stable path next to the script.
        let preset_path = out_dir.join("slurm_shard_preset.json");
        if let Err(err) = spec.write_preset(&preset_path) {
            eprintln!(
                "failed to write the worker preset {}: {err}",
                preset_path.display()
            );
            return 1;
        }
        eprintln!("  [preset] {}", preset_path.display());
        let mut base = vec![
            "sweep".to_string(),
            "--preset".to_string(),
            preset_path.display().to_string(),
        ];
        if let Some(threads) = args.threads {
            base.push("--threads".to_string());
            base.push(threads.to_string());
        }
        if args.lane != LanePolicy::default() {
            base.push("--lane".to_string());
            base.push(args.lane.label().to_string());
        }
        return emit_slurm_script(shard_args, &base, &out_dir);
    }
    let preset_path = out_dir.join(format!(
        ".mojo-hpc-shard-preset-{}.json",
        std::process::id()
    ));
    if let Err(err) = spec.write_preset(&preset_path) {
        eprintln!(
            "failed to write the worker preset {}: {err}",
            preset_path.display()
        );
        return 1;
    }
    let worker_args: Vec<Vec<String>> = (0..workers)
        .map(|index| {
            let mut argv = vec![
                "sweep".to_string(),
                "--preset".to_string(),
                preset_path.display().to_string(),
                "--shard".to_string(),
                format!("{index}/{workers}"),
            ];
            if let Some(threads) = args.threads {
                argv.push("--threads".to_string());
                argv.push(threads.to_string());
            }
            if args.lane != LanePolicy::default() {
                argv.push("--lane".to_string());
                argv.push(args.lane.label().to_string());
            }
            argv
        })
        .collect();
    let docs = dispatch_workers(shard_args, &worker_args);
    std::fs::remove_file(&preset_path).ok();
    let docs = match docs {
        Ok(docs) => docs,
        Err(err) => {
            eprintln!("error: {err}");
            return 1;
        }
    };
    let report = match shard::merge_sweep(&spec, &docs) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("merge failed: {err}");
            return 1;
        }
    };
    let code = emit_sweep_report(&report, args.format, &out_dir);
    if code != 0 {
        return code;
    }
    eprintln!(
        "merged {workers} shard(s) covering {} sweep point(s) in {:.3} s",
        spec.sizes.len(),
        started.elapsed().as_secs_f64()
    );
    0
}

/// Renders a sampled Hartree–Fock validation the way experiments render:
/// deterministic text on stdout plus a per-shard CSV table.
fn render_sampled(report: &SampledValidation) -> (String, CsvTable) {
    let mut text = String::new();
    text.push_str(&format!(
        "=== hartree-fock — sampled functional validation (natoms = {}, ngauss = {}) ===\n",
        report.natoms, report.ngauss
    ));
    text.push_str(&format!(
        "quartets {}  shards {}  probed {}  executed {}\n",
        report.nquartets,
        report.shards.len(),
        report.probed,
        report.executed
    ));
    text.push_str(&format!(
        "survivors: exact {}  estimated {}  (estimate error {:.2}%)\n",
        report.exact_survivors,
        report.estimated_survivors,
        report.survivor_estimate_error() * 100.0
    ));
    text.push_str(&format!(
        "max abs error: eri {:.3e}  fock {:.3e}\n",
        report.eri_max_abs_error, report.fock_max_abs_error
    ));
    let mut table = CsvTable::new([
        "shard",
        "start",
        "end",
        "probed",
        "surviving",
        "estimated_survivors",
        "max_abs_error",
    ]);
    for shard in &report.shards {
        table.push_row([
            shard.shard.to_string(),
            shard.start.to_string(),
            shard.end.to_string(),
            shard.probed.to_string(),
            shard.surviving.to_string(),
            shard.estimated_survivors().to_string(),
            format!("{:.3e}", shard.max_abs_error),
        ]);
    }
    (text, table)
}

fn execute_hartree_fock(args: &HartreeFockArgs) -> i32 {
    apply_threads(args.threads);
    let ngauss = args
        .ngauss
        .unwrap_or(if args.atoms >= 1024 { 6 } else { 3 });
    let config = HartreeFockConfig::paper(args.atoms, ngauss);
    let platform = Platform::portable_h100();
    match run_sampled(&platform, &config, args.samples, args.shards) {
        Ok(report) => {
            let (text, table) = render_sampled(&report);
            print!("{text}");
            let out_dir = args.out.clone().unwrap_or_else(output::experiments_dir);
            let path = out_dir.join(format!("hartree_fock_sampled_{}_shards.csv", report.natoms));
            if let Err(err) = table.write_to(&path) {
                eprintln!("failed to write {}: {err}", path.display());
                return 1;
            }
            eprintln!("  [csv] {}", path.display());
            0
        }
        Err(err) => {
            eprintln!("hartree-fock sampled validation failed: {err}");
            1
        }
    }
}

/// Byte-compares the `.csv` and `.json` report files of two directories,
/// naming the first differing row (CSV) or line (JSON) of each mismatched
/// file.
fn execute_diff(dir_a: &Path, dir_b: &Path) -> i32 {
    let list = |dir: &Path| -> Result<Vec<String>, String> {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok())
            .filter(|entry| {
                entry
                    .path()
                    .extension()
                    .is_some_and(|ext| ext == "csv" || ext == "json")
            })
            .filter_map(|entry| entry.file_name().into_string().ok())
            .collect();
        names.sort();
        Ok(names)
    };
    let (names_a, names_b) = match (list(dir_a), list(dir_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return 2;
        }
    };

    let mut differences = 0u32;
    for name in &names_a {
        if !names_b.contains(name) {
            println!("{name}: only in {}", dir_a.display());
            differences += 1;
        }
    }
    for name in &names_b {
        if !names_a.contains(name) {
            println!("{name}: only in {}", dir_b.display());
            differences += 1;
        }
    }
    for name in names_a.iter().filter(|n| names_b.contains(n)) {
        let read = |dir: &Path| std::fs::read_to_string(dir.join(name));
        let (text_a, text_b) = match (read(dir_a), read(dir_b)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("cannot read {name}: {e}");
                return 2;
            }
        };
        if text_a == text_b {
            continue;
        }
        differences += 1;
        // CSV rows and pretty-JSON lines are both line-shaped, so the first
        // differing line names the divergence in either lane.
        let unit = if name.ends_with(".json") {
            "line"
        } else {
            "row"
        };
        let mut lines_a = text_a.lines();
        let mut lines_b = text_b.lines();
        let mut row = 0u32;
        loop {
            let (line_a, line_b) = (lines_a.next(), lines_b.next());
            if line_a.is_none() && line_b.is_none() {
                // Same lines, so the difference is in trailing bytes.
                println!("{name}: differs in trailing whitespace");
                break;
            }
            if line_a != line_b {
                println!("{name}: {unit} {row} differs");
                println!("  a: {}", line_a.unwrap_or("<missing>"));
                println!("  b: {}", line_b.unwrap_or("<missing>"));
                break;
            }
            row += 1;
        }
    }

    if differences == 0 {
        eprintln!(
            "{} report file(s) identical",
            names_a.iter().filter(|n| names_b.contains(n)).count()
        );
        0
    } else {
        eprintln!("{differences} difference(s) found");
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_line(line: &str) -> Result<Command, String> {
        let args: Vec<String> = line.split_whitespace().map(String::from).collect();
        parse(&args)
    }

    #[test]
    fn parses_every_subcommand() {
        assert_eq!(parse_line("list").unwrap(), Command::List);
        assert!(matches!(parse_line("help").unwrap(), Command::Help));
        match parse_line("run table4 fig6 --out /tmp/x --threads 2").unwrap() {
            Command::Run(args) => {
                assert_eq!(args.ids, vec![ExperimentId::Table4, ExperimentId::Fig6]);
                assert_eq!(args.out, Some(PathBuf::from("/tmp/x")));
                assert_eq!(args.threads, Some(2));
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_line("run --all").unwrap() {
            Command::Run(args) => assert_eq!(args.ids.len(), ExperimentId::ALL.len()),
            other => panic!("unexpected {other:?}"),
        }
        match parse_line("run hartree-fock --atoms 1024 --sample 512 --shards 8").unwrap() {
            Command::RunHartreeFock(args) => {
                assert_eq!(args.atoms, 1024);
                assert_eq!(args.samples, 512);
                assert_eq!(args.shards, 8);
                assert_eq!(args.ngauss, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse_line("diff a b").unwrap(),
            Command::Diff { .. }
        ));
        match parse_line("bench-diff a.json b.json").unwrap() {
            Command::BenchDiff { max_regression, .. } => assert_eq!(max_regression, None),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_bench_diff_regression_gate() {
        match parse_line("bench-diff a.json b.json --max-regression 10").unwrap() {
            Command::BenchDiff { max_regression, .. } => {
                assert!((max_regression.unwrap() - 0.10).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The flag may appear anywhere; fractional percentages are fine.
        match parse_line("bench-diff --max-regression 2.5 a b").unwrap() {
            Command::BenchDiff { max_regression, .. } => {
                assert!((max_regression.unwrap() - 0.025).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_line("bench-diff a b --max-regression").is_err());
        assert!(parse_line("bench-diff a b --max-regression -5").is_err());
        assert!(parse_line("bench-diff a b --max-regression nope").is_err());
        assert!(parse_line("bench-diff a b c").is_err());
        assert!(parse_line("bench-diff a").is_err());
        assert!(parse_line("bench-diff a b --frobnicate").is_err());
    }

    #[test]
    fn parses_lane_flags() {
        match parse_line("run --all --lane simd").unwrap() {
            Command::Run(args) => assert_eq!(args.lane, LanePolicy::Simd),
            other => panic!("unexpected {other:?}"),
        }
        match parse_line("run --all").unwrap() {
            Command::Run(args) => assert_eq!(args.lane, LanePolicy::Deterministic),
            other => panic!("unexpected {other:?}"),
        }
        match parse_line("sweep stencil --sizes 16 --lane auto").unwrap() {
            Command::Sweep(args) => assert_eq!(args.lane, LanePolicy::Auto),
            other => panic!("unexpected {other:?}"),
        }
        match parse_line("sweep stencil --sizes 16 --lane deterministic").unwrap() {
            Command::Sweep(args) => assert_eq!(args.lane, LanePolicy::Deterministic),
            other => panic!("unexpected {other:?}"),
        }
        // The shard coordinator forwards the policy to its workers.
        match parse_line("shard run --all --workers 2 --lane simd").unwrap() {
            Command::Shard(args) => match args.inner.as_ref() {
                Command::Run(run) => assert_eq!(run.lane, LanePolicy::Simd),
                other => panic!("unexpected inner {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_line("run --all --lane warp").is_err());
        assert!(parse_line("run --all --lane").is_err());
        assert!(parse_line("run --all --lane simd --lane auto").is_err());
        assert!(parse_line("sweep stencil --sizes 16 --lane nope").is_err());
    }

    #[test]
    fn parses_bench_trajectory() {
        match parse_line("bench-trajectory snaps").unwrap() {
            Command::BenchTrajectory { root, csv } => {
                assert_eq!(root, PathBuf::from("snaps"));
                assert_eq!(csv, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_line("bench-trajectory snaps --csv trend.csv").unwrap() {
            Command::BenchTrajectory { csv, .. } => {
                assert_eq!(csv, Some(PathBuf::from("trend.csv")));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_line("bench-trajectory").is_err());
        assert!(parse_line("bench-trajectory a b").is_err());
        assert!(parse_line("bench-trajectory a --csv").is_err());
        assert!(parse_line("bench-trajectory a --frobnicate").is_err());
    }

    #[test]
    fn parses_sweep_and_format_flags() {
        match parse_line("sweep stencil --sizes 64,128,256 precision=fp32 --format json").unwrap() {
            Command::Sweep(args) => {
                assert_eq!(args.workload.as_deref(), Some("stencil"));
                assert_eq!(args.sizes, Some(vec![64, 128, 256]));
                assert_eq!(args.params, vec!["precision=fp32".to_string()]);
                assert_eq!(args.format, OutputFormat::Json);
                assert_eq!(args.threads, None);
                assert_eq!(args.shard, None);
                assert_eq!(args.preset, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_line("run --all --format json").unwrap() {
            Command::Run(args) => assert_eq!(args.format, OutputFormat::Json),
            other => panic!("unexpected {other:?}"),
        }
        match parse_line("run --all").unwrap() {
            Command::Run(args) => assert_eq!(args.format, OutputFormat::Csv),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_sweep_lines() {
        assert!(parse_line("sweep").is_err());
        assert!(parse_line("sweep stencil").is_err());
        assert!(parse_line("sweep stencil --sizes").is_err());
        assert!(parse_line("sweep stencil --sizes ,").is_err());
        assert!(parse_line("sweep stencil --sizes 64,x").is_err());
        assert!(parse_line("sweep stencil --sizes 64 --frobnicate").is_err());
        assert!(parse_line("sweep --sizes 64").is_err());
        assert!(parse_line("sweep stencil other --sizes 64").is_err());
        assert!(parse_line("run --all --format yaml").is_err());
    }

    #[test]
    fn parses_shard_worker_flags() {
        match parse_line("run --all --format json --shard 1/3").unwrap() {
            Command::Run(args) => {
                assert_eq!(args.shard, Some(ShardSpec { index: 1, total: 3 }));
                assert_eq!(args.format, OutputFormat::Json);
            }
            other => panic!("unexpected {other:?}"),
        }
        // No explicit format is fine — the worker always emits JSON.
        assert!(parse_line("run --all --shard 0/2").is_ok());
        match parse_line("sweep stencil --sizes 16,24 --shard 0/2").unwrap() {
            Command::Sweep(args) => {
                assert_eq!(args.shard, Some(ShardSpec { index: 0, total: 2 }))
            }
            other => panic!("unexpected {other:?}"),
        }
        // Out-of-range, malformed, overlapping (repeated) and csv-conflicting
        // shard specs are usage errors.
        assert!(parse_line("run --all --shard 3/3").is_err());
        assert!(parse_line("run --all --shard 5/3").is_err());
        assert!(parse_line("run --all --shard 1/0").is_err());
        assert!(parse_line("run --all --shard nope").is_err());
        assert!(parse_line("run --all --shard 0/3 --shard 1/3").is_err());
        assert!(parse_line("run --all --format csv --shard 0/3").is_err());
        assert!(parse_line("sweep stencil --sizes 16 --format csv --shard 0/2").is_err());
    }

    #[test]
    fn parses_the_shard_coordinator() {
        match parse_line("shard run --all --workers 3 --format json").unwrap() {
            Command::Shard(args) => {
                assert_eq!(args.workers, 3);
                match args.inner.as_ref() {
                    Command::Run(run) => {
                        assert_eq!(run.ids.len(), ExperimentId::ALL.len());
                        assert_eq!(run.format, OutputFormat::Json);
                        assert_eq!(run.shard, None);
                    }
                    other => panic!("unexpected inner {other:?}"),
                }
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_line("shard sweep stencil --sizes 16,24 --workers 2").unwrap() {
            Command::Shard(args) => {
                assert_eq!(args.workers, 2);
                assert!(matches!(args.inner.as_ref(), Command::Sweep(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        // --workers may appear anywhere in the line.
        assert!(parse_line("shard run --workers 2 --all").is_ok());
        assert!(parse_line("shard run --all").is_err(), "missing --workers");
        assert!(parse_line("shard run --all --workers 0").is_err());
        assert!(parse_line("shard run --all --workers x").is_err());
        assert!(parse_line("shard --workers 2").is_err());
        assert!(parse_line("shard diff a b --workers 2").is_err());
        assert!(parse_line("shard run hartree-fock --atoms 8 --workers 2").is_err());
        // The coordinator owns shard assignment.
        assert!(parse_line("shard run --all --workers 2 --shard 0/2").is_err());
    }

    #[test]
    fn parses_the_dispatcher_flags() {
        match parse_line(
            "shard run --all --workers 3 --launcher template --hosts h.json \
             --timeout 2.5 --max-attempts 5 --speculate",
        )
        .unwrap()
        {
            Command::Shard(args) => {
                assert_eq!(args.launcher, LauncherKind::Template);
                assert_eq!(args.hosts, Some(PathBuf::from("h.json")));
                assert_eq!(args.timeout, Some(2.5));
                assert_eq!(args.max_attempts, 5);
                assert!(args.speculate);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Defaults: local launcher, 3 attempts, no timeout, no speculation.
        match parse_line("shard run --all --workers 2").unwrap() {
            Command::Shard(args) => {
                assert_eq!(args.launcher, LauncherKind::Local);
                assert_eq!(args.hosts, None);
                assert_eq!(args.timeout, None);
                assert_eq!(args.max_attempts, 3);
                assert!(!args.speculate);
            }
            other => panic!("unexpected {other:?}"),
        }
        // "ssh" is an alias for the template launcher; slurm needs no hosts.
        match parse_line("shard run --all --workers 2 --launcher ssh --hosts h.json").unwrap() {
            Command::Shard(args) => assert_eq!(args.launcher, LauncherKind::Template),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_line("shard run --all --workers 2 --launcher slurm").is_ok());
        assert!(parse_line("shard run --all --workers 2 --max-attempts 0").is_ok());
        // Conflicting or malformed dispatcher flags are usage errors.
        assert!(parse_line("shard run --all --workers 2 --launcher warp").is_err());
        assert!(parse_line("shard run --all --workers 2 --launcher template").is_err());
        assert!(parse_line("shard run --all --workers 2 --hosts h.json").is_err());
        assert!(parse_line("shard run --all --workers 2 --timeout 0").is_err());
        assert!(parse_line("shard run --all --workers 2 --timeout -1").is_err());
        assert!(parse_line("shard run --all --workers 2 --timeout inf").is_err());
        assert!(parse_line("shard run --all --workers 2 --timeout nope").is_err());
        assert!(parse_line("shard run --all --workers 2 --max-attempts x").is_err());
        assert!(parse_line("shard run --all --workers 2 --launcher").is_err());
        assert!(parse_line("shard run --all --workers 2 --hosts").is_err());
    }

    #[test]
    fn parses_preset_flags_and_their_conflicts() {
        match parse_line("sweep --preset cfg.json --format json").unwrap() {
            Command::Sweep(args) => {
                assert_eq!(args.preset, Some(PathBuf::from("cfg.json")));
                assert_eq!(args.workload, None);
                assert_eq!(args.sizes, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_line("sweep stencil --sizes 16 --preset-out cfg.json").unwrap() {
            Command::Sweep(args) => {
                assert_eq!(args.preset_out, Some(PathBuf::from("cfg.json")));
                assert_eq!(args.preset, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        // --preset pins everything: combining it with inline configuration
        // is ambiguous and rejected.
        assert!(parse_line("sweep stencil --preset cfg.json").is_err());
        assert!(parse_line("sweep --preset cfg.json --sizes 16").is_err());
        assert!(parse_line("sweep --preset cfg.json precision=fp32").is_err());
        assert!(parse_line("sweep --preset").is_err());
    }

    #[test]
    fn sweep_of_an_unknown_workload_exits_2_naming_the_known_ones() {
        let Command::Sweep(args) = parse_line("sweep frobnicate --sizes 4").unwrap() else {
            panic!("expected a sweep command");
        };
        assert_eq!(execute_sweep(&args), 2);
        // Invalid parameters are also a usage error, caught before running.
        let Command::Sweep(args) = parse_line("sweep stencil --sizes 2").unwrap() else {
            panic!("expected a sweep command");
        };
        assert_eq!(execute_sweep(&args), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse(&[]).is_err());
        assert!(parse_line("frobnicate").is_err());
        assert!(parse_line("run").is_err());
        assert!(parse_line("run table9").is_err());
        assert!(parse_line("run --all table4").is_err());
        assert!(parse_line("run --threads").is_err());
        assert!(parse_line("run --all --threads 0").is_err());
        assert!(parse_line("run hartree-fock --atoms 64 --threads 0").is_err());
        assert!(parse_line("run hartree-fock").is_err());
        assert!(parse_line("run hartree-fock --atoms zero").is_err());
        assert!(parse_line("diff onlyone").is_err());
        assert!(parse_line("list extra").is_err());
    }

    #[test]
    fn unknown_experiment_error_names_the_known_ids() {
        let err = parse_line("run table9").unwrap_err();
        assert!(err.contains("table9"));
        assert!(err.contains("table5"), "error should list known ids: {err}");
    }

    #[test]
    fn diff_reports_identical_and_differing_directories() {
        let base = std::env::temp_dir().join(format!("mojo-hpc-cli-test-{}", std::process::id()));
        let dir_a = base.join("a");
        let dir_b = base.join("b");
        std::fs::create_dir_all(&dir_a).unwrap();
        std::fs::create_dir_all(&dir_b).unwrap();
        std::fs::write(dir_a.join("t.csv"), "h\n1\n").unwrap();
        std::fs::write(dir_b.join("t.csv"), "h\n1\n").unwrap();
        assert_eq!(execute_diff(&dir_a, &dir_b), 0);
        std::fs::write(dir_b.join("t.csv"), "h\n2\n").unwrap();
        assert_eq!(execute_diff(&dir_a, &dir_b), 1);
        std::fs::write(dir_b.join("extra.csv"), "h\n").unwrap();
        assert_eq!(execute_diff(&dir_a, &dir_b), 1);
        std::fs::remove_dir_all(&base).ok();
    }
}
