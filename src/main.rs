//! The `mojo-hpc` binary: scenario-addressable entry point to the
//! reproduction. `mojo-hpc help` prints the subcommand reference; parsing
//! and execution live in [`experiment_report::cli`], except `bench-diff`,
//! which is dispatched here because the bench crate sits above the report
//! crate in the dependency graph.
//!
//! The `shard` coordinator re-invokes *this* binary (via
//! `std::env::current_exe`) as its worker subprocesses, so the worker-facing
//! `--shard I/N` flags of `run` and `sweep` always speak the same partition
//! and document schema as the coordinator that spawned them (DESIGN.md §10).
//! Workers are placed through the fault-tolerant dispatcher
//! ([`experiment_report::dispatch`], DESIGN.md §12): pluggable launchers
//! (`--launcher local|template|slurm` with `--hosts`), per-worker
//! `--timeout`, bounded retry/re-shard under `--max-attempts`, and
//! `--speculate` duplicates of straggling shards — all while the merged
//! output stays byte-identical to a single-process run.
//!
//! `mojo-hpc serve` keeps one process of this binary resident as a TCP
//! report service ([`experiment_report::serve`], DESIGN.md §13): responses
//! reuse the `run`/`sweep` stdout bytes, results are cached under the
//! stable `Params` encoding, and oversized sweeps spill through the same
//! dispatcher — the serve process re-invokes this binary as its spill
//! workers exactly like the `shard` coordinator does.

use experiment_report::cli::{self, Command};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match cli::parse(&args) {
        Ok(Command::BenchDiff {
            baseline,
            current,
            max_regression,
        }) => bench_diff(&baseline, &current, max_regression),
        Ok(Command::BenchTrajectory { root, csv }) => bench_trajectory(&root, csv.as_deref()),
        Ok(command) => cli::execute(&command),
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("\n{}", cli::usage());
            2
        }
    };
    std::process::exit(code);
}

/// Renders the per-benchmark mean-time trend across a directory of archived
/// bench snapshots (`bench-trajectory-<sha>` subdirectories, oldest first by
/// modification time). `--csv FILE` additionally writes the trend table as
/// CSV.
fn bench_trajectory(root: &Path, csv: Option<&Path>) -> i32 {
    let snapshots = match bench::trajectory::load_snapshots(root) {
        Ok(snapshots) => snapshots,
        Err(message) => {
            eprintln!("error: {message}");
            return 2;
        }
    };
    let trajectory = bench::trajectory::trajectory(snapshots);
    print!("{}", bench::trajectory::render(&trajectory));
    if let Some(path) = csv {
        if let Err(err) = std::fs::write(path, bench::trajectory::to_csv(&trajectory)) {
            eprintln!("failed to write {}: {err}", path.display());
            return 1;
        }
        eprintln!("  [csv] {}", path.display());
    }
    0
}

/// Compares two bench JSON records (each a file or a directory of records),
/// tolerating groups present on only one side. With `max_regression` set
/// (a fraction, from `--max-regression PCT`), the comparison becomes a gate:
/// exit 1 when any benchmark's mean slowed down beyond the tolerance.
fn bench_diff(baseline: &Path, current: &Path, max_regression: Option<f64>) -> i32 {
    let load = |path: &Path| match bench::diff::load_records(path) {
        Ok(records) => Some(records),
        Err(message) => {
            eprintln!("error: {message}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (load(baseline), load(current)) else {
        return 2;
    };
    let comparison = bench::diff::diff(&baseline, &current);
    print!("{}", bench::diff::render(&comparison));
    let Some(tolerance) = max_regression else {
        return 0;
    };
    let flagged = bench::diff::regressions_beyond(&comparison, tolerance);
    if flagged.is_empty() {
        eprintln!("bench-diff: no regression beyond {:.1}%", tolerance * 100.0);
        return 0;
    }
    for r in &flagged {
        eprintln!(
            "bench-diff: {}/{} regressed {:+.1}% (tolerance {:.1}%)",
            r.group,
            r.id,
            r.change * 100.0,
            tolerance * 100.0
        );
    }
    1
}
