//! Figure 6 — miniBUDE GFLOP/s vs PPWI on the NVIDIA H100:
//! Mojo vs CUDA with and without fast-math, for work-group sizes 8 and 64.

use super::support::bude_fom;
use crate::render::Series;
use crate::report::ExperimentReport;
use hpc_metrics::output::CsvTable;
use science_kernels::minibude::{self, MiniBudeConfig};
use vendor_models::Platform;

/// Backends compared on the H100 in Figure 6.
pub fn h100_backends() -> Vec<Platform> {
    vec![
        Platform::portable_h100(),
        Platform::cuda_h100(true),
        Platform::cuda_h100(false),
    ]
}

/// Runs the PPWI sweep for one device's backend set and one work-group size.
pub fn sweep(platforms: &[Platform], wg: u32, csv: &mut CsvTable) -> Vec<Series> {
    let mut series = Vec::new();
    for platform in platforms {
        let mut s = Series::new(platform.backend.label());
        for ppwi in MiniBudeConfig::paper_ppwi_sweep() {
            let config = MiniBudeConfig {
                executed_poses: 0,
                ..MiniBudeConfig::paper(ppwi, wg)
            };
            let run = minibude::run(platform, &config).expect("fasten run");
            let gflops = bude_fom(&run, &config);
            s.push(format!("PPWI={ppwi}"), gflops);
            csv.push_row([
                platform.spec.name.clone(),
                platform.backend.label().to_string(),
                format!("{wg}"),
                format!("{ppwi}"),
                format!("{gflops}"),
            ]);
        }
        series.push(s);
    }
    series
}

/// Regenerates Figure 6 (both work-group sizes).
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig6",
        "miniBUDE GFLOP/s (Eq. 3) vs PPWI on the NVIDIA H100, bm1 deck",
    );
    let mut csv = CsvTable::new(["device", "backend", "wg", "ppwi", "gflops"]);
    for wg in MiniBudeConfig::paper_wg_values() {
        report.push_line(format!("Figure 6 (wg = {wg})"));
        let series = sweep(&h100_backends(), wg, &mut csv);
        report.push_line(Series::render_group(&series, "GF/s", 40));
    }
    report.push_table("gflops", csv);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_orders_backends_like_the_paper_at_wg64() {
        let mut csv = CsvTable::new(["device", "backend", "wg", "ppwi", "gflops"]);
        let series = sweep(&h100_backends(), 64, &mut csv);
        // series[0] = Mojo, [1] = CUDA fast-math, [2] = CUDA.
        for i in 0..series[0].points.len() {
            let mojo = series[0].points[i].1;
            let cuda_ff = series[1].points[i].1;
            let cuda = series[2].points[i].1;
            assert!(
                cuda_ff > mojo && mojo > cuda,
                "at {}: expected CUDA-ff > Mojo > CUDA, got {cuda_ff:.0} / {mojo:.0} / {cuda:.0}",
                series[0].points[i].0
            );
        }
    }

    #[test]
    fn fig6_mojo_efficiency_rises_at_wg8() {
        let mut csv = CsvTable::new(["device", "backend", "wg", "ppwi", "gflops"]);
        let wg8 = sweep(&h100_backends(), 8, &mut csv);
        let wg64 = sweep(&h100_backends(), 64, &mut csv);
        // Compare Mojo/CUDA-ff efficiency at PPWI=8 (index 3): Table 5 gives
        // 0.82 at wg=8 versus 0.59 at PPWI=4, wg=64.
        let eff8 = wg8[0].points[3].1 / wg8[1].points[3].1;
        let eff64 = wg64[0].points[2].1 / wg64[1].points[2].1;
        assert!((eff8 - 0.82).abs() < 0.1, "wg8 PPWI=8 efficiency {eff8}");
        assert!((eff64 - 0.59).abs() < 0.1, "wg64 PPWI=4 efficiency {eff64}");
    }

    #[test]
    fn fig6_report_contains_both_workgroup_sections() {
        let report = run();
        assert!(report.text.contains("Figure 6 (wg = 8)"));
        assert!(report.text.contains("Figure 6 (wg = 64)"));
        // 3 backends × 8 PPWI values × 2 work-group sizes.
        assert_eq!(report.tables[0].1.rows.len(), 48);
    }
}
