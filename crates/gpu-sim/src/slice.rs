//! A shareable slice with GPU device-memory write semantics.
//!
//! On a real GPU, every thread of a launch can write anywhere in global
//! memory; the hardware provides no synchronisation and data races are the
//! kernel author's responsibility. Simulated kernels need the same freedom:
//! many threads (rayon tasks) write disjoint elements of one output array.
//! [`UnsafeSlice`] makes that pattern expressible: it is `Sync`, hands out
//! unsynchronised element reads/writes, and documents the disjointness
//! obligation instead of enforcing it — exactly the contract CUDA and HIP give.

use std::cell::UnsafeCell;

/// A wrapper around a mutable slice that allows concurrent element writes from
/// multiple threads.
///
/// # Safety contract
///
/// [`UnsafeSlice::write`] is safe to *call* but the caller must uphold the
/// GPU-kernel contract: two threads must not write the same element without
/// external synchronisation, and an element concurrently written must not be
/// read. Violating this is a data race (undefined behaviour), just as it is in
/// a CUDA kernel. All kernels in this repository write disjoint index sets per
/// thread and are audited by their unit tests.
pub struct UnsafeSlice<'a, T> {
    slice: &'a [UnsafeCell<T>],
}

unsafe impl<T: Send + Sync> Sync for UnsafeSlice<'_, T> {}
unsafe impl<T: Send + Sync> Send for UnsafeSlice<'_, T> {}

impl<T> std::fmt::Debug for UnsafeSlice<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnsafeSlice")
            .field("len", &self.slice.len())
            .finish()
    }
}

impl<'a, T: Copy> UnsafeSlice<'a, T> {
    /// Wraps a mutable slice. The slice is exclusively borrowed for the
    /// lifetime of the wrapper, so no safe alias can observe the writes.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: [T] and [UnsafeCell<T>] have identical layout.
        let ptr = slice as *mut [T] as *const [UnsafeCell<T>];
        UnsafeSlice {
            slice: unsafe { &*ptr },
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.slice.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.slice.is_empty()
    }

    /// Reads element `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn read(&self, i: usize) -> T {
        unsafe { *self.slice[i].get() }
    }

    /// Writes element `i`.
    ///
    /// See the type-level safety contract: the caller must guarantee no other
    /// thread concurrently reads or writes element `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn write(&self, i: usize, value: T) {
        unsafe { *self.slice[i].get() = value }
    }

    /// Raw pointer to element `i`, for callers that need to issue atomic
    /// operations on the element (see [`crate::atomics`]).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn element_ptr(&self, i: usize) -> *mut T {
        self.slice[i].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn single_thread_read_write() {
        let mut data = vec![0.0f64; 8];
        {
            let s = UnsafeSlice::new(&mut data);
            assert_eq!(s.len(), 8);
            assert!(!s.is_empty());
            s.write(3, 1.5);
            assert_eq!(s.read(3), 1.5);
            assert_eq!(s.read(0), 0.0);
        }
        assert_eq!(data[3], 1.5);
    }

    #[test]
    fn empty_slice() {
        let mut data: Vec<f32> = vec![];
        let s = UnsafeSlice::new(&mut data);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn disjoint_parallel_writes_are_visible() {
        let n = 10_000;
        let mut data = vec![0u64; n];
        {
            let s = UnsafeSlice::new(&mut data);
            (0..n).into_par_iter().for_each(|i| {
                s.write(i, (i * 2) as u64);
            });
        }
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, (i * 2) as u64);
        }
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let mut data = vec![0.0f32; 2];
        let s = UnsafeSlice::new(&mut data);
        let _ = s.read(2);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        let mut data = vec![0.0f32; 2];
        let s = UnsafeSlice::new(&mut data);
        s.write(5, 1.0);
    }
}
