//! Cross-crate integration tests: the portable implementation and the vendor
//! baselines must produce the same numerics on every workload, on every
//! simulated device, because they verify against the same CPU references.

use mojo_hpc::kernels::{babelstream, hartree_fock, minibude, stencil7};
use mojo_hpc::spec::Precision;
use mojo_hpc::vendor::kernel_class::StreamOp;
use mojo_hpc::vendor::Platform;

fn all_platforms() -> Vec<Platform> {
    vec![
        Platform::portable_h100(),
        Platform::cuda_h100(false),
        Platform::cuda_h100(true),
        Platform::portable_mi300a(),
        Platform::hip_mi300a(false),
        Platform::hip_mi300a(true),
    ]
}

#[test]
fn stencil_verifies_on_every_platform_and_precision() {
    for platform in all_platforms() {
        for precision in [Precision::Fp32, Precision::Fp64] {
            let config = stencil7::StencilConfig::validation(28, precision);
            let run = stencil7::run(&platform, &config).expect("stencil run");
            assert!(
                run.verification.is_verified(),
                "{} {precision} stencil failed verification",
                platform.label()
            );
        }
    }
}

#[test]
fn babelstream_verifies_on_every_platform() {
    let config = babelstream::BabelStreamConfig::validation(1 << 13, Precision::Fp64);
    for platform in all_platforms() {
        for op in StreamOp::ALL {
            let run = babelstream::run(&platform, op, &config).expect("babelstream run");
            assert!(
                run.verification.is_verified(),
                "{} {op} failed verification",
                platform.label()
            );
        }
    }
}

#[test]
fn minibude_verifies_on_every_platform() {
    let config = minibude::MiniBudeConfig::validation(4, 16);
    for platform in all_platforms() {
        let run = minibude::run(&platform, &config).expect("fasten run");
        assert!(
            run.verification.is_verified(),
            "{} fasten failed verification",
            platform.label()
        );
    }
}

#[test]
fn hartree_fock_verifies_on_every_platform() {
    let config = hartree_fock::HartreeFockConfig::validation(10);
    for platform in all_platforms() {
        let run = hartree_fock::run(&platform, &config).expect("hartree-fock run");
        assert!(
            run.verification.is_verified(),
            "{} hartree-fock failed verification",
            platform.label()
        );
    }
}

#[test]
fn portable_source_is_identical_across_vendors() {
    // The defining property of the portable model: the same configuration and
    // the same portable code path run on both devices and verify on both. The
    // *performance* differs (that is the paper's subject) but the results and
    // the cost description do not.
    let config = stencil7::StencilConfig::validation(24, Precision::Fp64);
    let h100 = stencil7::run(&Platform::portable_h100(), &config).unwrap();
    let mi300a = stencil7::run(&Platform::portable_mi300a(), &config).unwrap();
    assert!(h100.verification.is_verified());
    assert!(mi300a.verification.is_verified());
    assert_eq!(h100.cost.total_bytes(), mi300a.cost.total_bytes());
    assert_eq!(h100.cost.flops, mi300a.cost.flops);
    assert_eq!(h100.backend, mi300a.backend);
}
