//! Hartree–Fock run configuration.

use serde::{Deserialize, Serialize};

/// Atom counts above which functional execution is skipped: the quartet count
/// grows as `O(natoms⁴)` and a 256-atom system already implies half a billion
/// quartets, far beyond what a host-side validation run should attempt. The
/// cost model (including exact Schwarz-screening counts) covers every size.
pub const MAX_FUNCTIONAL_NATOMS: u32 = 48;

/// Schwarz screening threshold used by the proxy app.
pub const DEFAULT_SCREENING_TOL: f64 = 1e-9;

/// Configuration of one Hartree–Fock experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HartreeFockConfig {
    /// Number of helium atoms (the paper runs 64, 128, 256 and 1024).
    pub natoms: u32,
    /// Gaussian primitives per atom (3, or 6 for the 1024-atom case).
    pub ngauss: u32,
    /// Lattice spacing between helium atoms in Bohr.
    pub spacing: f64,
    /// Schwarz screening threshold.
    pub screening_tol: f64,
    /// Whether to execute functionally and validate against the CPU reference
    /// (automatically limited to [`MAX_FUNCTIONAL_NATOMS`]).
    pub validate: bool,
}

impl HartreeFockConfig {
    /// The paper's configuration for a given system size.
    pub fn paper(natoms: u32, ngauss: u32) -> Self {
        HartreeFockConfig {
            natoms,
            ngauss,
            spacing: 2.0,
            screening_tol: DEFAULT_SCREENING_TOL,
            validate: natoms <= MAX_FUNCTIONAL_NATOMS,
        }
    }

    /// A small configuration that always executes and validates.
    pub fn validation(natoms: u32) -> Self {
        HartreeFockConfig {
            natoms,
            ngauss: 3,
            spacing: 2.0,
            screening_tol: DEFAULT_SCREENING_TOL,
            validate: true,
        }
    }

    /// Whether the driver should execute the kernel functionally.
    pub fn should_execute(&self) -> bool {
        self.validate && self.natoms <= MAX_FUNCTIONAL_NATOMS
    }

    /// Number of unique atom pairs `(i ≤ j)`.
    pub fn npairs(&self) -> u64 {
        let n = u64::from(self.natoms);
        n * (n + 1) / 2
    }

    /// Number of unique quartets `(ij ≤ kl)` before Schwarz screening.
    pub fn nquartets(&self) -> u64 {
        let p = self.npairs();
        p * (p + 1) / 2
    }

    /// The (natoms, ngauss) combinations reported in Table 4.
    pub fn paper_cases() -> [(u32, u32); 4] {
        [(64, 3), (128, 3), (256, 3), (1024, 6)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_and_quartet_counts() {
        let c = HartreeFockConfig::paper(4, 3);
        assert_eq!(c.npairs(), 10);
        assert_eq!(c.nquartets(), 55);
        let big = HartreeFockConfig::paper(256, 3);
        assert_eq!(big.npairs(), 256 * 257 / 2);
        assert_eq!(big.nquartets(), 32_896 * 32_897 / 2);
    }

    #[test]
    fn paper_configs_skip_functional_execution_for_large_systems() {
        assert!(!HartreeFockConfig::paper(256, 3).should_execute());
        assert!(!HartreeFockConfig::paper(64, 3).should_execute());
        assert!(HartreeFockConfig::validation(16).should_execute());
    }

    #[test]
    fn paper_cases_match_table4() {
        assert_eq!(
            HartreeFockConfig::paper_cases(),
            [(64, 3), (128, 3), (256, 3), (1024, 6)]
        );
    }
}
