//! Figure series: named (x, y) sequences with a compact console rendering.
//!
//! The paper's figures are scatter/bar/line plots; in a terminal we render
//! each series as labelled rows plus a proportional bar so relative
//! magnitudes — the thing the figures exist to show — are visible at a glance.

/// One named data series of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series label (e.g. "Mojo", "CUDA fast-math").
    pub label: String,
    /// `(x label, y value)` points.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: impl Into<String>, y: f64) {
        self.points.push((x.into(), y));
    }

    /// Largest y value in the series (0 for an empty series).
    pub fn max_y(&self) -> f64 {
        self.points.iter().map(|(_, y)| *y).fold(0.0, f64::max)
    }

    /// Renders a set of series as labelled bars normalised to the global
    /// maximum, `width` characters wide.
    pub fn render_group(series: &[Series], unit: &str, width: usize) -> String {
        let global_max = series.iter().map(Series::max_y).fold(0.0, f64::max);
        let mut out = String::new();
        for s in series {
            out.push_str(&format!("{}\n", s.label));
            for (x, y) in &s.points {
                let bar_len = if global_max > 0.0 {
                    ((y / global_max) * width as f64).round() as usize
                } else {
                    0
                };
                out.push_str(&format!(
                    "  {:<18} {:>12.2} {:<5} |{}\n",
                    x,
                    y,
                    unit,
                    "#".repeat(bar_len)
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_accumulates_points_and_tracks_max() {
        let mut s = Series::new("Mojo");
        s.push("Copy", 2657.0);
        s.push("Dot", 2100.0);
        assert_eq!(s.points.len(), 2);
        assert_eq!(s.max_y(), 2657.0);
        assert_eq!(Series::new("empty").max_y(), 0.0);
    }

    #[test]
    fn render_group_scales_bars_to_the_global_maximum() {
        let mut a = Series::new("Mojo");
        a.push("Copy", 100.0);
        let mut b = Series::new("CUDA");
        b.push("Copy", 50.0);
        let out = Series::render_group(&[a, b], "GB/s", 20);
        assert!(out.contains("Mojo"));
        assert!(out.contains("CUDA"));
        let lines: Vec<_> = out.lines().collect();
        let bars: Vec<usize> = lines
            .iter()
            .filter(|l| l.contains('|'))
            .map(|l| l.chars().filter(|&c| c == '#').count())
            .collect();
        assert_eq!(bars, vec![20, 10]);
    }
}
