//! The output type every experiment produces.

use hpc_metrics::output::{self, CsvTable};
use std::path::PathBuf;

/// The result of regenerating one table or figure.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Stable identifier ("table2", "fig4", …).
    pub id: String,
    /// Human-readable title mirroring the paper's caption.
    pub title: String,
    /// Console rendering (the rows/series the paper reports).
    pub text: String,
    /// Named CSV tables with the underlying data.
    pub tables: Vec<(String, CsvTable)>,
}

impl ExperimentReport {
    /// Creates a report with no CSV payload yet.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        ExperimentReport {
            id: id.into(),
            title: title.into(),
            text: String::new(),
            tables: Vec::new(),
        }
    }

    /// Appends a line to the console rendering.
    pub fn push_line(&mut self, line: impl AsRef<str>) {
        self.text.push_str(line.as_ref());
        self.text.push('\n');
    }

    /// Attaches a CSV table.
    pub fn push_table(&mut self, name: impl Into<String>, table: CsvTable) {
        self.tables.push((name.into(), table));
    }

    /// Writes every attached CSV under `target/experiments/<id>_<name>.csv`
    /// and returns the written paths.
    pub fn write_csv_files(&self) -> std::io::Result<Vec<PathBuf>> {
        self.write_csv_files_to(&output::experiments_dir())
    }

    /// Writes every attached CSV as `<dir>/<id>_<name>.csv` (creating `dir`
    /// as needed) and returns the written paths.
    pub fn write_csv_files_to(&self, dir: &std::path::Path) -> std::io::Result<Vec<PathBuf>> {
        let mut paths = Vec::new();
        for (name, table) in &self.tables {
            let path = dir.join(format!("{}_{}.csv", self.id, name));
            table.write_to(&path)?;
            paths.push(path);
        }
        Ok(paths)
    }

    /// The full console rendering including the title banner.
    pub fn render(&self) -> String {
        format!("=== {} — {} ===\n{}", self.id, self.title, self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accumulates_lines_and_tables() {
        let mut r = ExperimentReport::new("table9", "An example");
        r.push_line("row 1");
        r.push_line("row 2");
        let mut csv = CsvTable::new(["a"]);
        csv.push_row(["1"]);
        r.push_table("data", csv);
        assert_eq!(r.tables.len(), 1);
        let rendered = r.render();
        assert!(rendered.contains("table9"));
        assert!(rendered.contains("row 1\nrow 2\n"));
    }

    #[test]
    fn csv_files_are_written() {
        let mut r = ExperimentReport::new("unit-test-report", "tmp");
        let mut csv = CsvTable::new(["x", "y"]);
        csv.push_row(["1", "2"]);
        r.push_table("points", csv);
        let paths = r.write_csv_files().unwrap();
        assert_eq!(paths.len(), 1);
        assert!(paths[0].exists());
        std::fs::remove_file(&paths[0]).ok();
    }
}
