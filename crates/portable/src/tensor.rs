//! `LayoutTensor`: a typed, layout-aware view over a device buffer.
//!
//! Mirrors Mojo's `LayoutTensor[dtype, layout](buffer)`: the tensor does not
//! own new storage, it binds a [`Layout`] to an existing [`DeviceBuffer`] so
//! kernels can index it multi-dimensionally (`f[i, j, k]` in the paper's
//! Listing 2 becomes `f.set3(i, j, k, …)` here). Cloning a tensor clones the
//! view, not the data, so kernels capture tensors by value exactly the way
//! Mojo kernels take them as arguments.

use crate::layout::Layout;
use gpu_sim::memory::{DeviceBuffer, DeviceScalar};
use gpu_sim::{PooledVec, SimError, UnsafeSlice};

/// A layout-aware view over a device buffer.
#[derive(Debug, Clone)]
pub struct LayoutTensor<T: DeviceScalar> {
    buffer: DeviceBuffer<T>,
    layout: Layout,
}

impl<T: DeviceScalar> LayoutTensor<T> {
    /// Binds `layout` to `buffer`. Fails if the layout covers more elements
    /// than the buffer holds (covering fewer is allowed, as in Mojo).
    pub fn new(buffer: DeviceBuffer<T>, layout: Layout) -> Result<Self, SimError> {
        if layout.len() > buffer.len() {
            return Err(SimError::SizeMismatch {
                expected: layout.len(),
                actual: buffer.len(),
            });
        }
        Ok(LayoutTensor { buffer, layout })
    }

    /// The layout of this view.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Number of elements covered by the view.
    pub fn len(&self) -> usize {
        self.layout.len()
    }

    /// Whether the view covers no elements.
    pub fn is_empty(&self) -> bool {
        self.layout.is_empty()
    }

    /// The underlying device buffer.
    pub fn buffer(&self) -> &DeviceBuffer<T> {
        &self.buffer
    }

    /// Reads element `i` of a rank-1 tensor.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        self.buffer.read(self.layout.offset_1d(i))
    }

    /// Writes element `i` of a rank-1 tensor.
    #[inline]
    pub fn set(&self, i: usize, value: T) {
        self.buffer.write(self.layout.offset_1d(i), value)
    }

    /// Reads element `(i, j)` of a rank-2 tensor.
    #[inline]
    pub fn get2(&self, i: usize, j: usize) -> T {
        self.buffer.read(self.layout.offset_2d(i, j))
    }

    /// Writes element `(i, j)` of a rank-2 tensor.
    #[inline]
    pub fn set2(&self, i: usize, j: usize, value: T) {
        self.buffer.write(self.layout.offset_2d(i, j), value)
    }

    /// Reads element `(i, j, k)` of a rank-3 tensor.
    #[inline]
    pub fn get3(&self, i: usize, j: usize, k: usize) -> T {
        self.buffer.read(self.layout.offset_3d(i, j, k))
    }

    /// Writes element `(i, j, k)` of a rank-3 tensor.
    #[inline]
    pub fn set3(&self, i: usize, j: usize, k: usize, value: T) {
        self.buffer.write(self.layout.offset_3d(i, j, k), value)
    }

    /// Copies the covered elements back to the host.
    pub fn to_host(&self) -> Vec<T> {
        (0..self.layout.len())
            .map(|i| self.buffer.read(i))
            .collect()
    }

    /// Copies the covered elements into a pooled host vector, reusing its
    /// capacity — the steady-state replacement for [`LayoutTensor::to_host`]
    /// on hot verification paths.
    pub fn to_host_into(&self, out: &mut PooledVec<T>) {
        out.clear();
        out.reserve(self.layout.len());
        for i in 0..self.layout.len() {
            out.push(self.buffer.read(i));
        }
    }

    /// Copies host data into the covered elements.
    pub fn copy_from_host(&self, data: &[T]) -> Result<(), SimError> {
        if data.len() != self.layout.len() {
            return Err(SimError::SizeMismatch {
                expected: self.layout.len(),
                actual: data.len(),
            });
        }
        for (i, v) in data.iter().enumerate() {
            self.buffer.write(i, *v);
        }
        Ok(())
    }

    /// Fills the covered elements with `value`.
    pub fn fill(&self, value: T) {
        for i in 0..self.layout.len() {
            self.buffer.write(i, value);
        }
    }
}

impl LayoutTensor<f64> {
    /// Atomically adds `value` to the linear offset `offset`, mirroring the
    /// `fock.ptr.offset(i*natoms + j)` + `Atomic.fetch_add` idiom of the
    /// paper's Hartree–Fock kernel (Listing 5).
    #[inline]
    pub fn atomic_add_linear(&self, offset: usize, value: f64) -> f64 {
        self.buffer.atomic_add(offset, value)
    }

    /// Atomically adds `value` to element `(i, j)` of a rank-2 tensor.
    #[inline]
    pub fn atomic_add2(&self, i: usize, j: usize, value: f64) -> f64 {
        self.buffer.atomic_add(self.layout.offset_2d(i, j), value)
    }
}

impl LayoutTensor<f32> {
    /// Atomically adds `value` to the linear offset `offset`.
    #[inline]
    pub fn atomic_add_linear(&self, offset: usize, value: f32) -> f32 {
        self.buffer.atomic_add(offset, value)
    }
}

/// A host-side tensor view used by CPU reference implementations so they can
/// share indexing code with the device kernels.
#[derive(Debug)]
pub struct HostTensor<'a, T> {
    data: UnsafeSlice<'a, T>,
    layout: Layout,
}

impl<'a, T: Copy + Send + Sync> HostTensor<'a, T> {
    /// Binds a layout to a host slice.
    pub fn new(data: &'a mut [T], layout: Layout) -> Result<Self, SimError> {
        if layout.len() > data.len() {
            return Err(SimError::SizeMismatch {
                expected: layout.len(),
                actual: data.len(),
            });
        }
        Ok(HostTensor {
            data: UnsafeSlice::new(data),
            layout,
        })
    }

    /// Reads element `(i, j, k)`.
    #[inline]
    pub fn get3(&self, i: usize, j: usize, k: usize) -> T {
        self.data.read(self.layout.offset_3d(i, j, k))
    }

    /// Writes element `(i, j, k)`.
    #[inline]
    pub fn set3(&self, i: usize, j: usize, k: usize, value: T) {
        self.data.write(self.layout.offset_3d(i, j, k), value)
    }

    /// The layout of the view.
    pub fn layout(&self) -> Layout {
        self.layout
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Device;
    use gpu_spec::presets;

    fn device() -> Device {
        Device::new(presets::test_device())
    }

    #[test]
    fn rank1_get_set_roundtrip() {
        let dev = device();
        let buf = dev.alloc::<f64>(16).unwrap();
        let t = LayoutTensor::new(buf, Layout::row_major_1d(16)).unwrap();
        t.set(3, 2.5);
        assert_eq!(t.get(3), 2.5);
        assert_eq!(t.len(), 16);
        assert!(!t.is_empty());
    }

    #[test]
    fn rank3_indexing_matches_layout() {
        let dev = device();
        let buf = dev.alloc::<f32>(2 * 3 * 4).unwrap();
        let layout = Layout::row_major_3d(2, 3, 4);
        let t = LayoutTensor::new(buf.clone(), layout).unwrap();
        t.set3(1, 2, 3, 9.0);
        assert_eq!(t.get3(1, 2, 3), 9.0);
        assert_eq!(buf.read(layout.offset_3d(1, 2, 3)), 9.0);
    }

    #[test]
    fn layout_larger_than_buffer_is_rejected() {
        let dev = device();
        let buf = dev.alloc::<f64>(8).unwrap();
        assert!(LayoutTensor::new(buf, Layout::row_major_2d(3, 3)).is_err());
    }

    #[test]
    fn layout_smaller_than_buffer_is_allowed() {
        let dev = device();
        let buf = dev.alloc::<f64>(100).unwrap();
        let t = LayoutTensor::new(buf, Layout::row_major_1d(10)).unwrap();
        assert_eq!(t.len(), 10);
        assert_eq!(t.to_host().len(), 10);
    }

    #[test]
    fn host_copy_roundtrip_and_fill() {
        let dev = device();
        let buf = dev.alloc::<f64>(6).unwrap();
        let t = LayoutTensor::new(buf, Layout::row_major_2d(2, 3)).unwrap();
        t.copy_from_host(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(t.get2(1, 2), 6.0);
        assert_eq!(t.to_host(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        t.fill(0.0);
        assert_eq!(t.to_host(), vec![0.0; 6]);
        assert!(t.copy_from_host(&[1.0]).is_err());
    }

    #[test]
    fn tensor_clone_is_a_view() {
        let dev = device();
        let buf = dev.alloc::<f64>(4).unwrap();
        let a = LayoutTensor::new(buf, Layout::row_major_1d(4)).unwrap();
        let b = a.clone();
        b.set(0, 7.0);
        assert_eq!(a.get(0), 7.0);
    }

    #[test]
    fn atomic_adds_accumulate() {
        let dev = device();
        let buf = dev.alloc::<f64>(4).unwrap();
        let t = LayoutTensor::new(buf, Layout::row_major_2d(2, 2)).unwrap();
        use rayon::prelude::*;
        let tr = &t;
        (0..1000).into_par_iter().for_each(|_| {
            tr.atomic_add2(1, 1, 1.0);
            tr.atomic_add_linear(0, 0.5);
        });
        assert_eq!(t.get2(1, 1), 1000.0);
        assert_eq!(t.get2(0, 0), 500.0);
    }

    #[test]
    fn f32_atomic_add_linear() {
        let dev = device();
        let buf = dev.alloc::<f32>(1).unwrap();
        let t = LayoutTensor::new(buf, Layout::row_major_1d(1)).unwrap();
        t.atomic_add_linear(0, 1.5);
        t.atomic_add_linear(0, 2.5);
        assert_eq!(t.get(0), 4.0);
    }

    #[test]
    fn host_tensor_shares_indexing_with_device() {
        let layout = Layout::row_major_3d(3, 3, 3);
        let mut data = vec![0.0f64; layout.len()];
        {
            let h = HostTensor::new(&mut data, layout).unwrap();
            h.set3(1, 1, 1, 5.0);
            assert_eq!(h.get3(1, 1, 1), 5.0);
            assert_eq!(h.layout().rank(), 3);
        }
        assert_eq!(data[layout.offset_3d(1, 1, 1)], 5.0);
        let mut small = vec![0.0f64; 2];
        assert!(HostTensor::new(&mut small, layout).is_err());
    }
}
