//! Command-line interface of the `mojo-hpc` binary.
//!
//! Subcommands:
//!
//! * `list` — print every experiment id and its paper caption, plus every
//!   registered workload with its tunable parameters and defaults;
//! * `run --all | <experiment>…` — regenerate experiments (renders to
//!   stdout, CSV or JSON files under `--out DIR`, `--format csv|json`);
//! * `run hartree-fock --atoms N` — sharded/sampled functional validation of
//!   the Hartree–Fock kernel at any system size;
//! * `sweep <workload> --sizes a,b,c` — run any registered workload at
//!   custom problem sizes (with optional `key=value` parameter overrides);
//! * `diff <dir-a> <dir-b>` — byte-compare two experiment CSV directories;
//! * `bench-diff <a> <b>` — compare bench JSON records (dispatched by the
//!   binary to the bench crate; only parsed here).
//!
//! Exit codes: `0` success, `1` difference found or validation failed, `2`
//! usage error. All diagnostics go to stderr; stdout carries only the
//! deterministic experiment renderings, so `run` and `sweep` output can be
//! compared byte-for-byte across runs and thread counts.

use crate::registry::{run_experiments, ExperimentId, EXPERIMENTS};
use crate::report::ExperimentReport;
use crate::sweep::{run_sweep, SweepSpec};
use hpc_metrics::output::{self, CsvTable};
use science_kernels::hartree_fock::{
    run_sampled, HartreeFockConfig, SampledValidation, DEFAULT_SAMPLES, DEFAULT_SHARDS,
};
use science_kernels::workload;
use std::path::{Path, PathBuf};
use vendor_models::Platform;

/// Output rendering of `run` and `sweep`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable console text plus CSV files (the default).
    #[default]
    Csv,
    /// A JSON document on stdout plus one JSON file per report.
    Json,
}

impl OutputFormat {
    /// Parses a `--format` value.
    pub fn parse(value: &str) -> Result<OutputFormat, String> {
        match value {
            "csv" => Ok(OutputFormat::Csv),
            "json" => Ok(OutputFormat::Json),
            other => Err(format!("--format: expected csv or json, got '{other}'")),
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `list`: print the registry.
    List,
    /// `run`: regenerate experiments.
    Run(RunArgs),
    /// `run hartree-fock`: sampled functional validation.
    RunHartreeFock(HartreeFockArgs),
    /// `sweep`: run a workload at custom sizes.
    Sweep(SweepArgs),
    /// `diff`: compare two experiment CSV directories.
    Diff {
        /// Baseline directory.
        dir_a: PathBuf,
        /// Compared directory.
        dir_b: PathBuf,
    },
    /// `bench-diff`: compare two bench JSON records (file or directory each).
    BenchDiff {
        /// Baseline record or directory.
        baseline: PathBuf,
        /// Compared record or directory.
        current: PathBuf,
    },
    /// `help` / `--help`.
    Help,
}

/// Arguments of `run` over registry experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Experiments to regenerate, in presentation order.
    pub ids: Vec<ExperimentId>,
    /// File output directory (`target/experiments` when absent).
    pub out: Option<PathBuf>,
    /// Worker-thread override applied before the pool starts.
    pub threads: Option<usize>,
    /// Output rendering (CSV files + console text, or JSON).
    pub format: OutputFormat,
}

/// Arguments of `sweep`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Registered workload name.
    pub workload: String,
    /// Values of the workload's size parameter, in presentation order.
    pub sizes: Vec<u64>,
    /// `key=value` parameter overrides applied to the workload defaults.
    pub params: Vec<String>,
    /// File output directory (`target/experiments` when absent).
    pub out: Option<PathBuf>,
    /// Worker-thread override applied before the pool starts.
    pub threads: Option<usize>,
    /// Output rendering (CSV files + console text, or JSON).
    pub format: OutputFormat,
}

/// Arguments of `run hartree-fock`.
#[derive(Debug, Clone, PartialEq)]
pub struct HartreeFockArgs {
    /// Helium atom count.
    pub atoms: u32,
    /// Gaussian primitives per atom (paper pairing by default: 6 at 1024
    /// atoms, 3 otherwise).
    pub ngauss: Option<u32>,
    /// Total sampled probes across the quartet space.
    pub samples: u64,
    /// Shard count of the quartet space.
    pub shards: u64,
    /// CSV output directory (`target/experiments` when absent).
    pub out: Option<PathBuf>,
    /// Worker-thread override applied before the pool starts.
    pub threads: Option<usize>,
}

/// The usage text printed on `help` and usage errors.
pub fn usage() -> &'static str {
    "mojo-hpc — regenerate the paper's experiments and validate the kernels

USAGE:
  mojo-hpc list
  mojo-hpc run (--all | <experiment>...) [--out DIR] [--threads N]
                            [--format csv|json]
  mojo-hpc run hartree-fock --atoms N [--ngauss G] [--sample N] [--shards N]
                            [--out DIR] [--threads N]
  mojo-hpc sweep <workload> --sizes A,B,C [key=value ...] [--out DIR]
                            [--threads N] [--format csv|json]
  mojo-hpc diff <dir-a> <dir-b>
  mojo-hpc bench-diff <baseline.json|dir> <current.json|dir>
  mojo-hpc help

Experiment and sweep renderings go to stdout (byte-identical at every
--threads / RAYON_NUM_THREADS setting); CSV or JSON files land under --out
(default target/experiments); diagnostics go to stderr. `mojo-hpc list`
names every workload with its tunable parameters and defaults; `--sizes`
sweeps the workload's size parameter and `key=value` pins any other.

EXIT CODES:
  0  success / directories identical
  1  difference found, or a validation failed
  2  usage error or unreadable input"
}

/// Parses a command line (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut args = args.iter().map(String::as_str);
    let Some(subcommand) = args.next() else {
        return Err("missing subcommand".to_string());
    };
    let rest: Vec<&str> = args.collect();
    match subcommand {
        "list" => {
            expect_no_args("list", &rest)?;
            Ok(Command::List)
        }
        "run" => parse_run(&rest),
        "sweep" => parse_sweep(&rest),
        "diff" => {
            let [a, b] = two_paths("diff", &rest)?;
            Ok(Command::Diff { dir_a: a, dir_b: b })
        }
        "bench-diff" => {
            let [a, b] = two_paths("bench-diff", &rest)?;
            Ok(Command::BenchDiff {
                baseline: a,
                current: b,
            })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

fn expect_no_args(subcommand: &str, rest: &[&str]) -> Result<(), String> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(format!("'{subcommand}' takes no arguments"))
    }
}

fn two_paths(subcommand: &str, rest: &[&str]) -> Result<[PathBuf; 2], String> {
    match rest {
        [a, b] => Ok([PathBuf::from(a), PathBuf::from(b)]),
        _ => Err(format!("'{subcommand}' takes exactly two paths")),
    }
}

/// Parses the value of a `--flag VALUE` pair.
fn flag_value<'a, I: Iterator<Item = &'a str>>(
    flag: &str,
    args: &mut I,
) -> Result<&'a str, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse_number<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{flag}: invalid value '{value}'"))
}

/// Parses a `--threads` value, rejecting 0 like the other count flags.
fn parse_threads(value: &str) -> Result<usize, String> {
    let threads: usize = parse_number("--threads", value)?;
    if threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    Ok(threads)
}

fn parse_run(rest: &[&str]) -> Result<Command, String> {
    if rest.first() == Some(&"hartree-fock") {
        return parse_run_hartree_fock(&rest[1..]);
    }
    let mut ids = Vec::new();
    let mut all = false;
    let mut out = None;
    let mut threads = None;
    let mut format = OutputFormat::default();
    let mut args = rest.iter().copied();
    while let Some(arg) = args.next() {
        match arg {
            "--all" => all = true,
            "--out" => out = Some(PathBuf::from(flag_value("--out", &mut args)?)),
            "--threads" => threads = Some(parse_threads(flag_value("--threads", &mut args)?)?),
            "--format" => format = OutputFormat::parse(flag_value("--format", &mut args)?)?,
            flag if flag.starts_with('-') => return Err(format!("unknown flag '{flag}'")),
            id => ids.push(id.parse::<ExperimentId>().map_err(|e| {
                format!(
                    "{e}\nknown ids: {}",
                    ExperimentId::ALL
                        .iter()
                        .map(|i| i.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            })?),
        }
    }
    if all {
        if !ids.is_empty() {
            return Err("pass either --all or explicit experiment ids, not both".to_string());
        }
        ids = ExperimentId::ALL.to_vec();
    } else if ids.is_empty() {
        return Err("'run' needs --all or at least one experiment id".to_string());
    }
    Ok(Command::Run(RunArgs {
        ids,
        out,
        threads,
        format,
    }))
}

/// Parses a `--sizes` value: comma-separated positive integers.
fn parse_sizes(value: &str) -> Result<Vec<u64>, String> {
    let sizes: Vec<u64> = value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse::<u64>()
                .map_err(|_| format!("--sizes: invalid size '{s}'"))
        })
        .collect::<Result<_, _>>()?;
    if sizes.is_empty() {
        return Err("--sizes needs at least one value".to_string());
    }
    Ok(sizes)
}

fn parse_sweep(rest: &[&str]) -> Result<Command, String> {
    let known = || {
        workload::all()
            .iter()
            .map(|w| w.name())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let Some((&name, rest)) = rest.split_first() else {
        return Err(format!(
            "'sweep' needs a workload name (known: {})",
            known()
        ));
    };
    if name.starts_with('-') {
        return Err(format!(
            "'sweep' needs a workload name before flags (known: {})",
            known()
        ));
    }
    let mut sizes = None;
    let mut params = Vec::new();
    let mut out = None;
    let mut threads = None;
    let mut format = OutputFormat::default();
    let mut args = rest.iter().copied();
    while let Some(arg) = args.next() {
        match arg {
            "--sizes" => sizes = Some(parse_sizes(flag_value("--sizes", &mut args)?)?),
            "--out" => out = Some(PathBuf::from(flag_value("--out", &mut args)?)),
            "--threads" => threads = Some(parse_threads(flag_value("--threads", &mut args)?)?),
            "--format" => format = OutputFormat::parse(flag_value("--format", &mut args)?)?,
            assignment if assignment.contains('=') && !assignment.starts_with('-') => {
                params.push(assignment.to_string());
            }
            other => return Err(format!("unknown 'sweep' argument '{other}'")),
        }
    }
    let sizes = sizes.ok_or_else(|| "'sweep' needs --sizes A,B,C".to_string())?;
    Ok(Command::Sweep(SweepArgs {
        workload: name.to_string(),
        sizes,
        params,
        out,
        threads,
        format,
    }))
}

fn parse_run_hartree_fock(rest: &[&str]) -> Result<Command, String> {
    let mut atoms = None;
    let mut ngauss = None;
    let mut samples = DEFAULT_SAMPLES;
    let mut shards = DEFAULT_SHARDS;
    let mut out = None;
    let mut threads = None;
    let mut args = rest.iter().copied();
    while let Some(arg) = args.next() {
        match arg {
            "--atoms" => atoms = Some(parse_number("--atoms", flag_value("--atoms", &mut args)?)?),
            "--ngauss" => {
                ngauss = Some(parse_number(
                    "--ngauss",
                    flag_value("--ngauss", &mut args)?,
                )?)
            }
            "--sample" => {
                samples = parse_number("--sample", flag_value("--sample", &mut args)?)?;
            }
            "--shards" => shards = parse_number("--shards", flag_value("--shards", &mut args)?)?,
            "--out" => out = Some(PathBuf::from(flag_value("--out", &mut args)?)),
            "--threads" => threads = Some(parse_threads(flag_value("--threads", &mut args)?)?),
            other => return Err(format!("unknown 'run hartree-fock' argument '{other}'")),
        }
    }
    let atoms = atoms.ok_or_else(|| "'run hartree-fock' needs --atoms N".to_string())?;
    if atoms == 0 {
        return Err("--atoms must be at least 1".to_string());
    }
    if samples == 0 {
        return Err("--sample must be at least 1".to_string());
    }
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    Ok(Command::RunHartreeFock(HartreeFockArgs {
        atoms,
        ngauss,
        samples,
        shards,
        out,
        threads,
    }))
}

/// Applies a `--threads` override. Must run before the first parallel call
/// of the process — the worker pool reads `RAYON_NUM_THREADS` once, when it
/// is first used.
fn apply_threads(threads: Option<usize>) {
    if let Some(n) = threads {
        std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    }
}

/// Executes a parsed command, returning the process exit code.
///
/// `BenchDiff` is not handled here — the bench crate sits above this one, so
/// the binary dispatches it; passing it in is a programming error.
pub fn execute(command: &Command) -> i32 {
    match command {
        Command::List => {
            execute_list();
            0
        }
        Command::Run(args) => execute_run(args),
        Command::RunHartreeFock(args) => execute_hartree_fock(args),
        Command::Sweep(args) => execute_sweep(args),
        Command::Diff { dir_a, dir_b } => execute_diff(dir_a, dir_b),
        Command::BenchDiff { .. } => unreachable!("bench-diff is dispatched by the binary"),
        Command::Help => {
            println!("{}", usage());
            0
        }
    }
}

/// Prints the experiment registry and every workload with its parameters.
fn execute_list() {
    println!("experiments (mojo-hpc run <id>):");
    for spec in &EXPERIMENTS {
        let preset = match spec.workload {
            Some(p) => format!("  [workload: {}]", p.workload),
            None => String::new(),
        };
        println!("  {:<8} {}{preset}", spec.name, spec.title);
    }
    println!();
    println!("workloads (mojo-hpc sweep <workload> --sizes A,B,C [key=value ...]):");
    for engine in workload::all() {
        println!("  {:<22} {}", engine.name(), engine.description());
        println!(
            "  {:<22} fom: {}; sweep axis: {}",
            "",
            engine.fom_label(),
            engine.size_param()
        );
        for spec in engine.params() {
            println!(
                "      {:<18} {}",
                format!("{}={}", spec.name, spec.default),
                spec.help
            );
        }
    }
}

/// Writes a report's files (CSV tables or the JSON document) under `dir`,
/// echoing the paths to stderr. Returns false on an I/O failure.
fn write_report_files(report: &ExperimentReport, dir: &Path, format: OutputFormat) -> bool {
    match format {
        OutputFormat::Csv => match report.write_csv_files_to(dir) {
            Ok(paths) => {
                for path in paths {
                    eprintln!("  [csv] {}", path.display());
                }
                true
            }
            Err(err) => {
                eprintln!("failed to write CSV for {}: {err}", report.id);
                false
            }
        },
        OutputFormat::Json => match report.write_json_file_to(dir) {
            Ok(path) => {
                eprintln!("  [json] {}", path.display());
                true
            }
            Err(err) => {
                eprintln!("failed to write JSON for {}: {err}", report.id);
                false
            }
        },
    }
}

fn execute_run(args: &RunArgs) -> i32 {
    apply_threads(args.threads);
    let out_dir = args.out.clone().unwrap_or_else(output::experiments_dir);
    let started = std::time::Instant::now();
    let reports = run_experiments(&args.ids);
    if args.format == OutputFormat::Json {
        print!("{}", ExperimentReport::render_json_array(&reports));
    }
    for report in &reports {
        if args.format == OutputFormat::Csv {
            println!("{}", report.render());
        }
        if !write_report_files(report, &out_dir, args.format) {
            return 1;
        }
    }
    eprintln!(
        "regenerated {} experiment(s) in {:.3} s",
        reports.len(),
        started.elapsed().as_secs_f64()
    );
    0
}

fn execute_sweep(args: &SweepArgs) -> i32 {
    apply_threads(args.threads);
    let Some(engine) = workload::find(&args.workload) else {
        eprintln!(
            "error: unknown workload '{}' (known: {})",
            args.workload,
            workload::all()
                .iter()
                .map(|w| w.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return 2;
    };
    let spec = match SweepSpec::new(engine, &args.params, args.sizes.clone()) {
        Ok(spec) => spec,
        Err(err) => {
            eprintln!("error: {err}");
            return 2;
        }
    };
    let started = std::time::Instant::now();
    let report = match run_sweep(&spec) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("sweep failed: {err}");
            return 1;
        }
    };
    match args.format {
        OutputFormat::Csv => println!("{}", report.render()),
        OutputFormat::Json => print!("{}", report.to_json_pretty()),
    }
    let out_dir = args.out.clone().unwrap_or_else(output::experiments_dir);
    if !write_report_files(&report, &out_dir, args.format) {
        return 1;
    }
    eprintln!(
        "swept {} over {} size(s) in {:.3} s",
        engine.name(),
        args.sizes.len(),
        started.elapsed().as_secs_f64()
    );
    0
}

/// Renders a sampled Hartree–Fock validation the way experiments render:
/// deterministic text on stdout plus a per-shard CSV table.
fn render_sampled(report: &SampledValidation) -> (String, CsvTable) {
    let mut text = String::new();
    text.push_str(&format!(
        "=== hartree-fock — sampled functional validation (natoms = {}, ngauss = {}) ===\n",
        report.natoms, report.ngauss
    ));
    text.push_str(&format!(
        "quartets {}  shards {}  probed {}  executed {}\n",
        report.nquartets,
        report.shards.len(),
        report.probed,
        report.executed
    ));
    text.push_str(&format!(
        "survivors: exact {}  estimated {}  (estimate error {:.2}%)\n",
        report.exact_survivors,
        report.estimated_survivors,
        report.survivor_estimate_error() * 100.0
    ));
    text.push_str(&format!(
        "max abs error: eri {:.3e}  fock {:.3e}\n",
        report.eri_max_abs_error, report.fock_max_abs_error
    ));
    let mut table = CsvTable::new([
        "shard",
        "start",
        "end",
        "probed",
        "surviving",
        "estimated_survivors",
        "max_abs_error",
    ]);
    for shard in &report.shards {
        table.push_row([
            shard.shard.to_string(),
            shard.start.to_string(),
            shard.end.to_string(),
            shard.probed.to_string(),
            shard.surviving.to_string(),
            shard.estimated_survivors().to_string(),
            format!("{:.3e}", shard.max_abs_error),
        ]);
    }
    (text, table)
}

fn execute_hartree_fock(args: &HartreeFockArgs) -> i32 {
    apply_threads(args.threads);
    let ngauss = args
        .ngauss
        .unwrap_or(if args.atoms >= 1024 { 6 } else { 3 });
    let config = HartreeFockConfig::paper(args.atoms, ngauss);
    let platform = Platform::portable_h100();
    match run_sampled(&platform, &config, args.samples, args.shards) {
        Ok(report) => {
            let (text, table) = render_sampled(&report);
            print!("{text}");
            let out_dir = args.out.clone().unwrap_or_else(output::experiments_dir);
            let path = out_dir.join(format!("hartree_fock_sampled_{}_shards.csv", report.natoms));
            if let Err(err) = table.write_to(&path) {
                eprintln!("failed to write {}: {err}", path.display());
                return 1;
            }
            eprintln!("  [csv] {}", path.display());
            0
        }
        Err(err) => {
            eprintln!("hartree-fock sampled validation failed: {err}");
            1
        }
    }
}

/// Byte-compares the `.csv` files of two directories, naming the first
/// differing row of each mismatched file.
fn execute_diff(dir_a: &Path, dir_b: &Path) -> i32 {
    let list = |dir: &Path| -> Result<Vec<String>, String> {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
            .filter_map(|entry| entry.ok())
            .filter(|entry| entry.path().extension().is_some_and(|ext| ext == "csv"))
            .filter_map(|entry| entry.file_name().into_string().ok())
            .collect();
        names.sort();
        Ok(names)
    };
    let (names_a, names_b) = match (list(dir_a), list(dir_b)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return 2;
        }
    };

    let mut differences = 0u32;
    for name in &names_a {
        if !names_b.contains(name) {
            println!("{name}: only in {}", dir_a.display());
            differences += 1;
        }
    }
    for name in &names_b {
        if !names_a.contains(name) {
            println!("{name}: only in {}", dir_b.display());
            differences += 1;
        }
    }
    for name in names_a.iter().filter(|n| names_b.contains(n)) {
        let read = |dir: &Path| std::fs::read_to_string(dir.join(name));
        let (text_a, text_b) = match (read(dir_a), read(dir_b)) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("cannot read {name}: {e}");
                return 2;
            }
        };
        if text_a == text_b {
            continue;
        }
        differences += 1;
        let mut lines_a = text_a.lines();
        let mut lines_b = text_b.lines();
        let mut row = 0u32;
        loop {
            let (line_a, line_b) = (lines_a.next(), lines_b.next());
            if line_a.is_none() && line_b.is_none() {
                // Same lines, so the difference is in trailing bytes.
                println!("{name}: differs in trailing whitespace");
                break;
            }
            if line_a != line_b {
                println!("{name}: row {row} differs");
                println!("  a: {}", line_a.unwrap_or("<missing>"));
                println!("  b: {}", line_b.unwrap_or("<missing>"));
                break;
            }
            row += 1;
        }
    }

    if differences == 0 {
        eprintln!(
            "{} CSV file(s) identical",
            names_a.iter().filter(|n| names_b.contains(n)).count()
        );
        0
    } else {
        eprintln!("{differences} difference(s) found");
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_line(line: &str) -> Result<Command, String> {
        let args: Vec<String> = line.split_whitespace().map(String::from).collect();
        parse(&args)
    }

    #[test]
    fn parses_every_subcommand() {
        assert_eq!(parse_line("list").unwrap(), Command::List);
        assert!(matches!(parse_line("help").unwrap(), Command::Help));
        match parse_line("run table4 fig6 --out /tmp/x --threads 2").unwrap() {
            Command::Run(args) => {
                assert_eq!(args.ids, vec![ExperimentId::Table4, ExperimentId::Fig6]);
                assert_eq!(args.out, Some(PathBuf::from("/tmp/x")));
                assert_eq!(args.threads, Some(2));
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_line("run --all").unwrap() {
            Command::Run(args) => assert_eq!(args.ids.len(), ExperimentId::ALL.len()),
            other => panic!("unexpected {other:?}"),
        }
        match parse_line("run hartree-fock --atoms 1024 --sample 512 --shards 8").unwrap() {
            Command::RunHartreeFock(args) => {
                assert_eq!(args.atoms, 1024);
                assert_eq!(args.samples, 512);
                assert_eq!(args.shards, 8);
                assert_eq!(args.ngauss, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            parse_line("diff a b").unwrap(),
            Command::Diff { .. }
        ));
        assert!(matches!(
            parse_line("bench-diff a.json b.json").unwrap(),
            Command::BenchDiff { .. }
        ));
    }

    #[test]
    fn parses_sweep_and_format_flags() {
        match parse_line("sweep stencil --sizes 64,128,256 precision=fp32 --format json").unwrap() {
            Command::Sweep(args) => {
                assert_eq!(args.workload, "stencil");
                assert_eq!(args.sizes, vec![64, 128, 256]);
                assert_eq!(args.params, vec!["precision=fp32".to_string()]);
                assert_eq!(args.format, OutputFormat::Json);
                assert_eq!(args.threads, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse_line("run --all --format json").unwrap() {
            Command::Run(args) => assert_eq!(args.format, OutputFormat::Json),
            other => panic!("unexpected {other:?}"),
        }
        match parse_line("run --all").unwrap() {
            Command::Run(args) => assert_eq!(args.format, OutputFormat::Csv),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_sweep_lines() {
        assert!(parse_line("sweep").is_err());
        assert!(parse_line("sweep stencil").is_err());
        assert!(parse_line("sweep stencil --sizes").is_err());
        assert!(parse_line("sweep stencil --sizes ,").is_err());
        assert!(parse_line("sweep stencil --sizes 64,x").is_err());
        assert!(parse_line("sweep stencil --sizes 64 --frobnicate").is_err());
        assert!(parse_line("sweep --sizes 64").is_err());
        assert!(parse_line("run --all --format yaml").is_err());
    }

    #[test]
    fn sweep_of_an_unknown_workload_exits_2_naming_the_known_ones() {
        let Command::Sweep(args) = parse_line("sweep frobnicate --sizes 4").unwrap() else {
            panic!("expected a sweep command");
        };
        assert_eq!(execute_sweep(&args), 2);
        // Invalid parameters are also a usage error, caught before running.
        let Command::Sweep(args) = parse_line("sweep stencil --sizes 2").unwrap() else {
            panic!("expected a sweep command");
        };
        assert_eq!(execute_sweep(&args), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse(&[]).is_err());
        assert!(parse_line("frobnicate").is_err());
        assert!(parse_line("run").is_err());
        assert!(parse_line("run table9").is_err());
        assert!(parse_line("run --all table4").is_err());
        assert!(parse_line("run --threads").is_err());
        assert!(parse_line("run --all --threads 0").is_err());
        assert!(parse_line("run hartree-fock --atoms 64 --threads 0").is_err());
        assert!(parse_line("run hartree-fock").is_err());
        assert!(parse_line("run hartree-fock --atoms zero").is_err());
        assert!(parse_line("diff onlyone").is_err());
        assert!(parse_line("list extra").is_err());
    }

    #[test]
    fn unknown_experiment_error_names_the_known_ids() {
        let err = parse_line("run table9").unwrap_err();
        assert!(err.contains("table9"));
        assert!(err.contains("table5"), "error should list known ids: {err}");
    }

    #[test]
    fn diff_reports_identical_and_differing_directories() {
        let base = std::env::temp_dir().join(format!("mojo-hpc-cli-test-{}", std::process::id()));
        let dir_a = base.join("a");
        let dir_b = base.join("b");
        std::fs::create_dir_all(&dir_a).unwrap();
        std::fs::create_dir_all(&dir_b).unwrap();
        std::fs::write(dir_a.join("t.csv"), "h\n1\n").unwrap();
        std::fs::write(dir_b.join("t.csv"), "h\n1\n").unwrap();
        assert_eq!(execute_diff(&dir_a, &dir_b), 0);
        std::fs::write(dir_b.join("t.csv"), "h\n2\n").unwrap();
        assert_eq!(execute_diff(&dir_a, &dir_b), 1);
        std::fs::write(dir_b.join("extra.csv"), "h\n").unwrap();
        assert_eq!(execute_diff(&dir_a, &dir_b), 1);
        std::fs::remove_dir_all(&base).ok();
    }
}
