//! Vendor and portable *programming-model* descriptions: which backend
//! compiled a kernel, how that backend's generated code performs, and which
//! launch heuristics it uses.
//!
//! The paper compares one portable (Mojo-style) implementation of each
//! workload against the vendor-native baselines (CUDA on the H100, HIP on
//! the MI300A, each with and without fast-math). This crate carries
//! everything that distinguishes those programming models in the simulation:
//!
//! * [`Backend`] — which compiler produced the kernel,
//! * [`Platform`] — a (device, backend) pair, the unit every experiment
//!   iterates over,
//! * [`kernel_class`] — what kind of kernel is being compiled (family and
//!   shape parameters),
//! * [`heuristics`] — the launch-geometry choices of each model,
//! * per-backend [`ExecutionProfile`]s (via
//!   [`Platform::execution_profile`]) calibrated so the `gpu_sim` timing
//!   model reproduces the paper's tables and figures.

#![warn(missing_docs)]

pub mod heuristics;
pub mod kernel_class;
mod profiles;

pub use kernel_class::{KernelClass, StreamOp};

use gpu_sim::{ExecutionProfile, TimingModel};
use gpu_spec::{presets, GpuSpec};
use std::fmt;

/// The compiler backend that produced a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The portable (Mojo-analog) backend: one source for every device.
    Portable,
    /// The CUDA-like vendor baseline (NVIDIA devices).
    Cuda {
        /// Whether `-ffast-math` style transcendental lowering is enabled.
        fast_math: bool,
    },
    /// The HIP-like vendor baseline (AMD devices).
    Hip {
        /// Whether fast-math transcendental lowering is enabled.
        fast_math: bool,
    },
}

impl Backend {
    /// The CUDA baseline without fast-math.
    pub const CUDA: Backend = Backend::Cuda { fast_math: false };

    /// The HIP baseline without fast-math.
    pub const HIP: Backend = Backend::Hip { fast_math: false };

    /// Whether this is the portable (single-source) backend.
    pub fn is_portable(&self) -> bool {
        matches!(self, Backend::Portable)
    }

    /// Whether fast-math lowering is enabled (always false for the portable
    /// backend — the missing option the paper discusses for miniBUDE).
    pub fn fast_math(&self) -> bool {
        match self {
            Backend::Portable => false,
            Backend::Cuda { fast_math } | Backend::Hip { fast_math } => *fast_math,
        }
    }

    /// Plot label, matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Portable => "Mojo",
            Backend::Cuda { fast_math: false } => "CUDA",
            Backend::Cuda { fast_math: true } => "CUDA fast-math",
            Backend::Hip { fast_math: false } => "HIP",
            Backend::Hip { fast_math: true } => "HIP fast-math",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One evaluated configuration: a device plus the backend compiling for it.
#[derive(Debug, Clone)]
pub struct Platform {
    /// The simulated device.
    pub spec: GpuSpec,
    /// The compiler backend.
    pub backend: Backend,
}

impl Platform {
    /// Creates a platform over an arbitrary device, validating the spec.
    pub fn new(spec: GpuSpec, backend: Backend) -> Result<Platform, String> {
        spec.validate()?;
        Ok(Platform { spec, backend })
    }

    /// The portable backend on the NVIDIA H100 NVL.
    pub fn portable_h100() -> Platform {
        Platform {
            spec: presets::h100_nvl(),
            backend: Backend::Portable,
        }
    }

    /// The CUDA baseline on the NVIDIA H100 NVL.
    pub fn cuda_h100(fast_math: bool) -> Platform {
        Platform {
            spec: presets::h100_nvl(),
            backend: Backend::Cuda { fast_math },
        }
    }

    /// The portable backend on the AMD MI300A.
    pub fn portable_mi300a() -> Platform {
        Platform {
            spec: presets::mi300a(),
            backend: Backend::Portable,
        }
    }

    /// The HIP baseline on the AMD MI300A.
    pub fn hip_mi300a(fast_math: bool) -> Platform {
        Platform {
            spec: presets::mi300a(),
            backend: Backend::Hip { fast_math },
        }
    }

    /// Every platform of the paper's evaluation, in presentation order.
    pub fn paper_platforms() -> Vec<Platform> {
        vec![
            Platform::portable_h100(),
            Platform::cuda_h100(false),
            Platform::cuda_h100(true),
            Platform::portable_mi300a(),
            Platform::hip_mi300a(false),
            Platform::hip_mi300a(true),
        ]
    }

    /// Human-readable label: backend plus device.
    pub fn label(&self) -> String {
        format!("{} on {}", self.backend.label(), self.spec.name)
    }

    /// Whether this platform is a vendor-native baseline (CUDA/HIP).
    pub fn is_vendor_baseline(&self) -> bool {
        !self.backend.is_portable()
    }

    /// The timing model of this platform's device.
    pub fn timing_model(&self) -> TimingModel {
        TimingModel::new(self.spec.clone())
    }

    /// The execution profile this platform's backend achieves for a kernel
    /// class — the calibrated codegen constants that reproduce the paper's
    /// measurements (see [`mod@crate::heuristics`] and the crate docs).
    pub fn execution_profile(&self, class: &KernelClass) -> ExecutionProfile {
        profiles::build(&self.spec, self.backend, class)
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::{Precision, Vendor};

    #[test]
    fn backend_labels_match_the_figures() {
        assert_eq!(Backend::Portable.label(), "Mojo");
        assert_eq!(Backend::CUDA.label(), "CUDA");
        assert_eq!(Backend::Cuda { fast_math: true }.label(), "CUDA fast-math");
        assert_eq!(Backend::HIP.label(), "HIP");
        assert_eq!(
            Backend::Hip { fast_math: true }.to_string(),
            "HIP fast-math"
        );
        assert!(Backend::Portable.is_portable());
        assert!(!Backend::CUDA.is_portable());
        assert!(!Backend::Portable.fast_math());
        assert!(Backend::Hip { fast_math: true }.fast_math());
    }

    #[test]
    fn platform_constructors_pair_devices_with_backends() {
        // H100 vs MI300A specs must match Table 1 through the constructors.
        let h100 = Platform::portable_h100();
        assert_eq!(h100.spec.vendor, Vendor::Nvidia);
        assert!((h100.spec.bandwidth_gbs - 3900.0).abs() < 1e-9);
        let mi = Platform::hip_mi300a(false);
        assert_eq!(mi.spec.vendor, Vendor::Amd);
        assert!((mi.spec.bandwidth_gbs - 5300.0).abs() < 1e-9);
        assert!(mi.is_vendor_baseline());
        assert!(!Platform::portable_mi300a().is_vendor_baseline());
        assert!(h100.label().contains("Mojo"));
        assert!(h100.label().contains("H100"));
        assert_eq!(Platform::paper_platforms().len(), 6);
    }

    #[test]
    fn platform_new_validates_the_spec() {
        let mut bad = gpu_spec::presets::h100_nvl();
        bad.bandwidth_gbs = -1.0;
        assert!(Platform::new(bad, Backend::CUDA).is_err());
        assert!(Platform::new(gpu_spec::presets::mi300a(), Backend::HIP).is_ok());
    }

    #[test]
    fn vendor_and_portable_launch_geometry_differ_where_the_paper_says() {
        // The Dot reduction is the launch-heuristic divergence point: fixed
        // grid-stride grid (portable) vs 4 blocks per SM/CU (vendor).
        let h100 = Platform::portable_h100();
        let portable = heuristics::dot_launch(h100.backend, &h100.spec, 1 << 25);
        let cuda = Platform::cuda_h100(false);
        let vendor = heuristics::dot_launch(cuda.backend, &cuda.spec, 1 << 25);
        assert_ne!(portable.num_blocks(), vendor.num_blocks());
        // The flat streaming ops use identical one-thread-per-element grids.
        assert_eq!(heuristics::stream_launch(1 << 25).total_threads(), 1 << 25);
    }

    #[test]
    fn h100_and_mi300a_profiles_differ_for_the_same_portable_source() {
        // Single source, per-device codegen: the stencil profile the portable
        // backend achieves differs between devices (parity on the MI300A,
        // a gap on the H100), which is the paper's central measurement.
        let class = KernelClass::Stencil7 {
            precision: Precision::Fp64,
        };
        let on_h100 = Platform::portable_h100().execution_profile(&class);
        let on_mi300a = Platform::portable_mi300a().execution_profile(&class);
        assert!(on_h100.mem_efficiency != on_mi300a.mem_efficiency);
        // On the MI300A the portable profile matches HIP exactly (Fig. 3b).
        let hip = Platform::hip_mi300a(false).execution_profile(&class);
        assert_eq!(on_mi300a.mem_efficiency, hip.mem_efficiency);
        // On the H100 CUDA sustains more of the memory system (Fig. 3a).
        let cuda = Platform::cuda_h100(false).execution_profile(&class);
        assert!(cuda.mem_efficiency > on_h100.mem_efficiency);
    }
}
