//! Figures of merit for the composite compute patterns (DESIGN.md §15):
//! the iterative Jacobi solver and the streaming-dataset engine.
//!
//! Both are memory-bandwidth bound, so both report an effective bandwidth in
//! the style of Eqs. (1) and (2):
//!
//! ```text
//! jacobi:      bytes = iters · (2·L³ + (L−2)³) · sizeof(f64)
//! framestream: bytes = frames · 3·n · sizeof(f64)
//! bandwidth   = bytes / solve_time
//! ```
//!
//! The Jacobi term charges, per sweep, one fetch of the full `L³` grid, one
//! write of the full grid (interior update plus boundary carry in the
//! ping-pong buffer), and one re-read of the `(L−2)³` previous interior values
//! by the convergence-norm reduction. The framestream term is the nstream-like
//! three-array pattern — read the accumulator, read the frame, write the
//! accumulator — once per element per frame.

/// Element size of both composite workloads (they run in FP64 only).
const ELEM: u64 = 8;

/// Total effective DRAM traffic of a Jacobi solve: `iters` sweeps over an
/// `l`³ grid, each followed by an interior convergence-norm reduction.
pub fn jacobi_traffic_bytes(l: u64, iters: u64) -> u64 {
    let cells = l * l * l;
    let interior = (l - 2).pow(3);
    iters * (2 * cells + interior) * ELEM
}

/// Effective bandwidth in GB/s (decimal) of a Jacobi solve that ran `iters`
/// sweeps in `solve_time_s` seconds.
pub fn jacobi_bandwidth_gbs(l: u64, iters: u64, solve_time_s: f64) -> f64 {
    assert!(solve_time_s > 0.0, "solve time must be positive");
    jacobi_traffic_bytes(l, iters) as f64 / solve_time_s / 1e9
}

/// Total effective DRAM traffic of a framestream pass: `frames` frames of `n`
/// elements, each accumulated with the three-array read/read/write pattern.
pub fn framestream_traffic_bytes(n: u64, frames: u64) -> u64 {
    frames * 3 * n * ELEM
}

/// Effective bandwidth in GB/s (decimal) of a framestream pass that consumed
/// `frames` frames of `n` elements in `stream_time_s` seconds.
pub fn framestream_bandwidth_gbs(n: u64, frames: u64, stream_time_s: f64) -> f64 {
    assert!(stream_time_s > 0.0, "stream time must be positive");
    framestream_traffic_bytes(n, frames) as f64 / stream_time_s / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_traffic_counts_sweep_and_norm_bytes() {
        // L = 16, one iteration: fetch 16³, write 16³, re-read 14³ interior.
        assert_eq!(
            jacobi_traffic_bytes(16, 1),
            (2 * 16u64.pow(3) + 14u64.pow(3)) * 8
        );
        // Traffic is linear in the iteration count.
        assert_eq!(
            jacobi_traffic_bytes(16, 10),
            10 * jacobi_traffic_bytes(16, 1)
        );
    }

    #[test]
    fn framestream_traffic_is_three_arrays_per_frame() {
        assert_eq!(
            framestream_traffic_bytes(1 << 14, 64),
            64 * 3 * (1 << 14) * 8
        );
        assert_eq!(
            framestream_traffic_bytes(1 << 14, 64),
            64 * framestream_traffic_bytes(1 << 14, 1)
        );
    }

    #[test]
    fn bandwidths_are_bytes_over_time() {
        let time = 1e-3;
        let jac = jacobi_bandwidth_gbs(16, 100, time);
        assert!((jac - jacobi_traffic_bytes(16, 100) as f64 / time / 1e9).abs() < 1e-9);
        let fs = framestream_bandwidth_gbs(1 << 14, 64, time);
        assert!((fs - framestream_traffic_bytes(1 << 14, 64) as f64 / time / 1e9).abs() < 1e-9);
        // Halving the time doubles the bandwidth.
        assert!((framestream_bandwidth_gbs(1 << 14, 64, time / 2.0) / fs - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_solve_time_panics() {
        jacobi_bandwidth_gbs(16, 100, 0.0);
    }
}
