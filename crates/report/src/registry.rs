//! The experiment registry: a data-driven table of every reproducible paper
//! element.
//!
//! Each entry ([`ExperimentSpec`]) carries the experiment's stable string id,
//! its paper caption, the builder that regenerates it, and — for every
//! element that measures a kernel — the [`science_kernels::workload`] name
//! plus the parameter presets that reproduce the paper's configurations.
//! The presets make the relationship explicit: a paper figure is the general
//! scenario engine run at pinned parameters, and `mojo-hpc sweep` runs the
//! same engine at any other size.

use crate::experiments;
use crate::report::ExperimentReport;
use rayon::prelude::*;
use science_kernels::workload;
use std::fmt;
use std::str::FromStr;

/// Identifier of one reproducible paper element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// Table 1/6 — hardware.
    Table1,
    /// Figure 2 — roofline.
    Fig2,
    /// Figure 3 — stencil bandwidth.
    Fig3,
    /// Table 2 — stencil NCU profile.
    Table2,
    /// Figure 4 — BabelStream bandwidth.
    Fig4,
    /// Table 3 — BabelStream NCU profile.
    Table3,
    /// Figure 5 — Triad instruction mix.
    Fig5,
    /// Figure 6 — miniBUDE on the H100.
    Fig6,
    /// Figure 7 — miniBUDE on the MI300A.
    Fig7,
    /// Table 4 — Hartree-Fock wall-clock.
    Table4,
    /// Table 5 — performance portability Φ.
    Table5,
}

/// The workload behind an experiment: a registered
/// [`science_kernels::workload`] name and the parameter presets (partial
/// `key=value` encodings over the workload's defaults) the paper element
/// pins, in the order the experiment traverses them.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadPreset {
    /// Registered workload name.
    pub workload: &'static str,
    /// One partial parameter encoding per preset point.
    pub presets: &'static [&'static str],
}

impl WorkloadPreset {
    /// Resolves every preset against the workload's defaults, validating
    /// each assignment.
    pub fn resolve(&self) -> Result<Vec<workload::Params>, workload::WorkloadError> {
        let engine = workload::find(self.workload).ok_or_else(|| {
            workload::WorkloadError::new(format!("unknown workload '{}'", self.workload))
        })?;
        self.presets
            .iter()
            .map(|encoding| {
                let mut params = engine.default_params();
                params.apply_encoding(encoding)?;
                engine.validate(&params)?;
                Ok(params)
            })
            .collect()
    }
}

/// One row of the registry: everything the CLI, the dispatcher and the
/// docs need to know about an experiment, in one place.
pub struct ExperimentSpec {
    /// The typed identifier.
    pub id: ExperimentId,
    /// The stable string id ("table2", "fig4", …).
    pub name: &'static str,
    /// The paper caption the experiment regenerates.
    pub title: &'static str,
    /// Builder regenerating the element.
    pub run: fn() -> ExperimentReport,
    /// The workload + parameter presets the element measures, when it
    /// measures one (aggregate/derived elements carry `None`).
    pub workload: Option<WorkloadPreset>,
}

/// Stencil presets of Figure 3, in the figure's traversal order (size-major,
/// FP32 before FP64 — the order the CSV rows appear in).
pub const FIG3_STENCIL_PRESETS: &[&str] = &[
    "l=512,precision=fp32",
    "l=512,precision=fp64",
    "l=1024,precision=fp32",
    "l=1024,precision=fp64",
];

/// miniBUDE presets of Figures 6 and 7: the paper's PPWI sweep at both
/// work-group sizes, work-group-major like the figures.
pub const MINIBUDE_PPWI_PRESETS: &[&str] = &[
    "ppwi=1,wg=8",
    "ppwi=2,wg=8",
    "ppwi=4,wg=8",
    "ppwi=8,wg=8",
    "ppwi=16,wg=8",
    "ppwi=32,wg=8",
    "ppwi=64,wg=8",
    "ppwi=128,wg=8",
    "ppwi=1,wg=64",
    "ppwi=2,wg=64",
    "ppwi=4,wg=64",
    "ppwi=8,wg=64",
    "ppwi=16,wg=64",
    "ppwi=32,wg=64",
    "ppwi=64,wg=64",
    "ppwi=128,wg=64",
];

/// The registry itself, in presentation order.
pub const EXPERIMENTS: [ExperimentSpec; 11] = [
    ExperimentSpec {
        id: ExperimentId::Table1,
        name: "table1",
        title: "GPU hardware used in this study",
        run: experiments::table1::run,
        workload: None,
    },
    ExperimentSpec {
        id: ExperimentId::Fig2,
        name: "fig2",
        title: "Roofline representation of the workloads on the NVIDIA H100",
        run: experiments::fig2::run,
        workload: None,
    },
    ExperimentSpec {
        id: ExperimentId::Fig3,
        name: "fig3",
        title: "Mojo vs CUDA/HIP seven-point stencil effective bandwidth (Eq. 1)",
        run: experiments::fig3::run,
        workload: Some(WorkloadPreset {
            workload: "stencil",
            presets: FIG3_STENCIL_PRESETS,
        }),
    },
    ExperimentSpec {
        id: ExperimentId::Table2,
        name: "table2",
        title: "Seven-point stencil Mojo vs CUDA NCU profiling metrics",
        run: experiments::table2::run,
        workload: Some(WorkloadPreset {
            workload: "stencil",
            presets: &["l=512,precision=fp64", "l=1024,precision=fp32"],
        }),
    },
    ExperimentSpec {
        id: ExperimentId::Fig4,
        name: "fig4",
        title: "Mojo vs CUDA/HIP BabelStream effective bandwidth (Eq. 2), n = 2^25 FP64",
        run: experiments::fig4::run,
        workload: Some(WorkloadPreset {
            workload: "babelstream",
            presets: &["n=33554432,precision=fp64,op=all"],
        }),
    },
    ExperimentSpec {
        id: ExperimentId::Table3,
        name: "table3",
        title: "BabelStream Mojo vs CUDA NCU profiling metrics (n = 2^25 FP64)",
        run: experiments::table3::run,
        workload: Some(WorkloadPreset {
            workload: "babelstream",
            presets: &["n=33554432,precision=fp64,op=all"],
        }),
    },
    ExperimentSpec {
        id: ExperimentId::Fig5,
        name: "fig5",
        title: "Mojo vs CUDA generated-code comparison for BabelStream Triad (instruction mix)",
        run: experiments::fig5::run,
        workload: Some(WorkloadPreset {
            workload: "babelstream",
            presets: &["n=33554432,precision=fp64,op=triad"],
        }),
    },
    ExperimentSpec {
        id: ExperimentId::Fig6,
        name: "fig6",
        title: "miniBUDE GFLOP/s (Eq. 3) vs PPWI on the NVIDIA H100, bm1 deck",
        run: experiments::fig6::run,
        workload: Some(WorkloadPreset {
            workload: "minibude",
            presets: MINIBUDE_PPWI_PRESETS,
        }),
    },
    ExperimentSpec {
        id: ExperimentId::Fig7,
        name: "fig7",
        title: "miniBUDE GFLOP/s (Eq. 3) vs PPWI on the AMD MI300A, bm1 deck",
        run: experiments::fig7::run,
        workload: Some(WorkloadPreset {
            workload: "minibude",
            presets: MINIBUDE_PPWI_PRESETS,
        }),
    },
    ExperimentSpec {
        id: ExperimentId::Table4,
        name: "table4",
        title: "Hartree-Fock kernel execution duration (ms), Mojo vs CUDA and HIP",
        run: experiments::table4::run,
        workload: Some(WorkloadPreset {
            workload: "hartree-fock",
            presets: &[
                "atoms=64,ngauss=3",
                "atoms=128,ngauss=3",
                "atoms=256,ngauss=3",
                "atoms=1024,ngauss=6",
            ],
        }),
    },
    ExperimentSpec {
        id: ExperimentId::Table5,
        name: "table5",
        title: "Mojo performance-portability metric (Eq. 4)",
        run: experiments::table5::run,
        workload: None,
    },
];

impl ExperimentId {
    /// Every experiment in presentation order.
    pub const ALL: [ExperimentId; 11] = [
        ExperimentId::Table1,
        ExperimentId::Fig2,
        ExperimentId::Fig3,
        ExperimentId::Table2,
        ExperimentId::Fig4,
        ExperimentId::Table3,
        ExperimentId::Fig5,
        ExperimentId::Fig6,
        ExperimentId::Fig7,
        ExperimentId::Table4,
        ExperimentId::Table5,
    ];

    /// The registry row of this experiment.
    pub fn spec(&self) -> &'static ExperimentSpec {
        EXPERIMENTS
            .iter()
            .find(|spec| spec.id == *self)
            .expect("every ExperimentId has a registry row")
    }

    /// The stable string id ("table2", "fig4", …).
    pub fn as_str(&self) -> &'static str {
        self.spec().name
    }

    /// The paper caption the experiment regenerates (mirrors the title its
    /// [`ExperimentReport`] carries, without running it).
    pub fn title(&self) -> &'static str {
        self.spec().title
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ExperimentId {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EXPERIMENTS
            .iter()
            .find(|spec| spec.name == s)
            .map(|spec| spec.id)
            .ok_or_else(|| format!("unknown experiment id '{s}'"))
    }
}

/// The comma-separated list of every known experiment id, for usage errors
/// and coordinator diagnostics.
pub fn known_ids() -> String {
    EXPERIMENTS
        .iter()
        .map(|spec| spec.name)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Runs one experiment.
pub fn run_experiment(id: ExperimentId) -> ExperimentReport {
    (id.spec().run)()
}

/// Runs every experiment and returns the reports in presentation order.
///
/// The experiments are independent of one another, so they are dispatched
/// concurrently over the persistent rayon pool; shared inputs (the helium
/// systems, the miniBUDE deck, stencil grids) are generated once through
/// `science_kernels::cache` no matter which experiment reaches them first.
/// Output order — and, because the timing model is analytic and the jitter
/// models are seeded, output *content* — is identical to a serial run.
pub fn all_experiments() -> Vec<ExperimentReport> {
    run_experiments(&ExperimentId::ALL)
}

/// Runs a set of experiments concurrently, preserving input order.
pub fn run_experiments(ids: &[ExperimentId]) -> Vec<ExperimentReport> {
    ids.par_iter().map(|&id| run_experiment(id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_strings() {
        for id in ExperimentId::ALL {
            let parsed: ExperimentId = id.as_str().parse().unwrap();
            assert_eq!(parsed, id);
            assert_eq!(id.to_string(), id.as_str());
        }
        assert!("table9".parse::<ExperimentId>().is_err());
    }

    #[test]
    fn registry_covers_every_paper_element() {
        assert_eq!(ExperimentId::ALL.len(), 11);
        assert_eq!(EXPERIMENTS.len(), ExperimentId::ALL.len());
        for (spec, id) in EXPERIMENTS.iter().zip(ExperimentId::ALL) {
            assert_eq!(spec.id, id, "registry order matches presentation order");
        }
        // Quick experiments dispatch and produce ids matching the registry.
        for id in [ExperimentId::Table1, ExperimentId::Fig5] {
            let report = run_experiment(id);
            assert_eq!(report.id, id.as_str());
            assert!(!report.text.is_empty());
        }
    }

    #[test]
    fn every_workload_preset_resolves_against_its_engine() {
        let mut kernel_experiments = 0;
        for spec in &EXPERIMENTS {
            let Some(preset) = spec.workload else {
                continue;
            };
            kernel_experiments += 1;
            let resolved = preset
                .resolve()
                .unwrap_or_else(|e| panic!("{} presets: {e}", spec.name));
            assert_eq!(resolved.len(), preset.presets.len());
            // Encodings are total: re-applying a resolved encoding is a
            // fixed point.
            for params in &resolved {
                let engine = workload::find(preset.workload).unwrap();
                let mut again = engine.default_params();
                again.apply_encoding(&params.encode()).unwrap();
                assert_eq!(&again, params);
            }
        }
        // Every kernel-measuring element names its engine: only the
        // hardware table, the roofline and the derived Φ table are exempt.
        assert_eq!(kernel_experiments, 8);
    }

    #[test]
    fn fig3_presets_decode_to_the_papers_stencil_configs() {
        use gpu_spec::Precision;
        use science_kernels::stencil7::{workload as stencil_workload, StencilConfig};
        let preset = ExperimentId::Fig3.spec().workload.unwrap();
        let configs: Vec<StencilConfig> = preset
            .resolve()
            .unwrap()
            .iter()
            .map(|p| stencil_workload::config(p).unwrap())
            .collect();
        assert_eq!(
            configs,
            vec![
                StencilConfig::paper(512, Precision::Fp32),
                StencilConfig::paper(512, Precision::Fp64),
                StencilConfig::paper(1024, Precision::Fp32),
                StencilConfig::paper(1024, Precision::Fp64),
            ]
        );
    }
}
