//! Bench target for Table 4 — Hartree–Fock kernel wall-clock times.

use criterion::Criterion;
use experiment_report::ExperimentId;
use science_kernels::cache;
use science_kernels::hartree_fock::{self, HartreeFockConfig};
use vendor_models::Platform;

fn bench(c: &mut Criterion) {
    let pool_before = bench::pool_snapshot();
    let mut group = c.benchmark_group("table4_hartree_fock");
    // Functional Fock build (atomics included) on a small helium lattice.
    group.bench_function("portable_fock_build_24_atoms", |b| {
        let platform = Platform::portable_h100();
        let config = HartreeFockConfig::validation(24);
        b.iter(|| hartree_fock::run(&platform, &config).unwrap())
    });
    // The screening count that makes the 1024-atom cost model instantaneous.
    group.bench_function("schwarz_survivor_count_1024_atoms", |b| {
        let config = HartreeFockConfig::paper(1024, 6);
        let system = cache::helium_system(&config);
        b.iter(|| hartree_fock::surviving_quartets(&system.schwarz, config.screening_tol))
    });
    bench::record_pool_counters(&mut group, &pool_before);
    group.finish();
}

fn main() {
    bench::reproduce(ExperimentId::Table4);
    let mut criterion = Criterion::default().sample_size(10).configure_from_args();
    bench(&mut criterion);
    criterion.final_summary();
}
