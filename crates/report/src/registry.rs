//! The experiment registry: stable identifiers and a dispatcher.

use crate::experiments;
use crate::report::ExperimentReport;
use rayon::prelude::*;
use std::fmt;
use std::str::FromStr;

/// Identifier of one reproducible paper element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentId {
    /// Table 1/6 — hardware.
    Table1,
    /// Figure 2 — roofline.
    Fig2,
    /// Figure 3 — stencil bandwidth.
    Fig3,
    /// Table 2 — stencil NCU profile.
    Table2,
    /// Figure 4 — BabelStream bandwidth.
    Fig4,
    /// Table 3 — BabelStream NCU profile.
    Table3,
    /// Figure 5 — Triad instruction mix.
    Fig5,
    /// Figure 6 — miniBUDE on the H100.
    Fig6,
    /// Figure 7 — miniBUDE on the MI300A.
    Fig7,
    /// Table 4 — Hartree-Fock wall-clock.
    Table4,
    /// Table 5 — performance portability Φ.
    Table5,
}

impl ExperimentId {
    /// Every experiment in presentation order.
    pub const ALL: [ExperimentId; 11] = [
        ExperimentId::Table1,
        ExperimentId::Fig2,
        ExperimentId::Fig3,
        ExperimentId::Table2,
        ExperimentId::Fig4,
        ExperimentId::Table3,
        ExperimentId::Fig5,
        ExperimentId::Fig6,
        ExperimentId::Fig7,
        ExperimentId::Table4,
        ExperimentId::Table5,
    ];

    /// The stable string id ("table2", "fig4", …).
    pub fn as_str(&self) -> &'static str {
        match self {
            ExperimentId::Table1 => "table1",
            ExperimentId::Fig2 => "fig2",
            ExperimentId::Fig3 => "fig3",
            ExperimentId::Table2 => "table2",
            ExperimentId::Fig4 => "fig4",
            ExperimentId::Table3 => "table3",
            ExperimentId::Fig5 => "fig5",
            ExperimentId::Fig6 => "fig6",
            ExperimentId::Fig7 => "fig7",
            ExperimentId::Table4 => "table4",
            ExperimentId::Table5 => "table5",
        }
    }

    /// The paper caption the experiment regenerates (mirrors the title its
    /// [`ExperimentReport`] carries, without running it).
    pub fn title(&self) -> &'static str {
        match self {
            ExperimentId::Table1 => "GPU hardware used in this study",
            ExperimentId::Fig2 => "Roofline representation of the workloads on the NVIDIA H100",
            ExperimentId::Fig3 => {
                "Mojo vs CUDA/HIP seven-point stencil effective bandwidth (Eq. 1)"
            }
            ExperimentId::Table2 => "Seven-point stencil Mojo vs CUDA NCU profiling metrics",
            ExperimentId::Fig4 => {
                "Mojo vs CUDA/HIP BabelStream effective bandwidth (Eq. 2), n = 2^25 FP64"
            }
            ExperimentId::Table3 => {
                "BabelStream Mojo vs CUDA NCU profiling metrics (n = 2^25 FP64)"
            }
            ExperimentId::Fig5 => {
                "Mojo vs CUDA generated-code comparison for BabelStream Triad (instruction mix)"
            }
            ExperimentId::Fig6 => "miniBUDE GFLOP/s (Eq. 3) vs PPWI on the NVIDIA H100, bm1 deck",
            ExperimentId::Fig7 => "miniBUDE GFLOP/s (Eq. 3) vs PPWI on the AMD MI300A, bm1 deck",
            ExperimentId::Table4 => {
                "Hartree-Fock kernel execution duration (ms), Mojo vs CUDA and HIP"
            }
            ExperimentId::Table5 => "Mojo performance-portability metric (Eq. 4)",
        }
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ExperimentId {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ExperimentId::ALL
            .iter()
            .copied()
            .find(|id| id.as_str() == s)
            .ok_or_else(|| format!("unknown experiment id '{s}'"))
    }
}

/// Runs one experiment.
pub fn run_experiment(id: ExperimentId) -> ExperimentReport {
    match id {
        ExperimentId::Table1 => experiments::table1::run(),
        ExperimentId::Fig2 => experiments::fig2::run(),
        ExperimentId::Fig3 => experiments::fig3::run(),
        ExperimentId::Table2 => experiments::table2::run(),
        ExperimentId::Fig4 => experiments::fig4::run(),
        ExperimentId::Table3 => experiments::table3::run(),
        ExperimentId::Fig5 => experiments::fig5::run(),
        ExperimentId::Fig6 => experiments::fig6::run(),
        ExperimentId::Fig7 => experiments::fig7::run(),
        ExperimentId::Table4 => experiments::table4::run(),
        ExperimentId::Table5 => experiments::table5::run(),
    }
}

/// Runs every experiment and returns the reports in presentation order.
///
/// The experiments are independent of one another, so they are dispatched
/// concurrently over the persistent rayon pool; shared inputs (the helium
/// systems, the miniBUDE deck, stencil grids) are generated once through
/// `science_kernels::cache` no matter which experiment reaches them first.
/// Output order — and, because the timing model is analytic and the jitter
/// models are seeded, output *content* — is identical to a serial run.
pub fn all_experiments() -> Vec<ExperimentReport> {
    run_experiments(&ExperimentId::ALL)
}

/// Runs a set of experiments concurrently, preserving input order.
pub fn run_experiments(ids: &[ExperimentId]) -> Vec<ExperimentReport> {
    (0..ids.len())
        .into_par_iter()
        .map(|index| run_experiment(ids[index]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_strings() {
        for id in ExperimentId::ALL {
            let parsed: ExperimentId = id.as_str().parse().unwrap();
            assert_eq!(parsed, id);
            assert_eq!(id.to_string(), id.as_str());
        }
        assert!("table9".parse::<ExperimentId>().is_err());
    }

    #[test]
    fn registry_covers_every_paper_element() {
        assert_eq!(ExperimentId::ALL.len(), 11);
        // Quick experiments dispatch and produce ids matching the registry.
        for id in [ExperimentId::Table1, ExperimentId::Fig5] {
            let report = run_experiment(id);
            assert_eq!(report.id, id.as_str());
            assert!(!report.text.is_empty());
        }
    }
}
