//! Table 3 — BabelStream NCU profiling metrics (Copy, Mul, Add, Dot), Mojo
//! vs CUDA on the H100.

use super::support::MetricRow;
use crate::render::AsciiTable;
use crate::report::ExperimentReport;
use gpu_sim::ProfileReport;
use gpu_spec::{presets, Precision};
use hpc_metrics::output::CsvTable;
use science_kernels::babelstream::{self, BabelStreamConfig};
use vendor_models::kernel_class::StreamOp;
use vendor_models::Platform;

/// The operations profiled in Table 3.
pub const PROFILED_OPS: [StreamOp; 4] =
    [StreamOp::Copy, StreamOp::Mul, StreamOp::Add, StreamOp::Dot];

/// Regenerates Table 3.
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table3",
        "BabelStream Mojo vs CUDA NCU profiling metrics (n = 2^25 FP64)",
    );
    report.push_line("[profile constants: EXPERIMENTS.md \u{00a7} BabelStream]");
    let spec = presets::h100_nvl();
    let config = BabelStreamConfig::paper(Precision::Fp64);
    let mut header = vec!["ncu metric".to_string()];
    for op in PROFILED_OPS {
        header.push(format!("{op} Mojo"));
        header.push(format!("{op} CUDA"));
    }
    let mut table = AsciiTable::new(header);
    let mut csv = CsvTable::new([
        "op",
        "backend",
        "duration_ms",
        "compute_sm_pct",
        "memory_pct",
        "registers",
        "ldg",
        "stg",
    ]);

    let mut profiles: Vec<(StreamOp, ProfileReport, ProfileReport)> = Vec::new();
    for op in PROFILED_OPS {
        let mojo = babelstream::run(&Platform::portable_h100(), op, &config).expect("mojo run");
        let cuda = babelstream::run(&Platform::cuda_h100(false), op, &config).expect("cuda run");
        let mojo_prof = ProfileReport::derive(&spec, &mojo.cost, &mojo.profile, &mojo.timing);
        let cuda_prof = ProfileReport::derive(&spec, &cuda.cost, &cuda.profile, &cuda.timing);
        for (backend, prof) in [("Mojo", &mojo_prof), ("CUDA", &cuda_prof)] {
            csv.push_row([
                op.label().to_string(),
                backend.to_string(),
                format!("{}", prof.duration_ms),
                format!("{}", prof.compute_sm_pct),
                format!("{}", prof.memory_pct),
                format!("{}", prof.registers),
                format!("{}", prof.load_global),
                format!("{}", prof.store_global),
            ]);
        }
        profiles.push((op, mojo_prof, cuda_prof));
    }

    let rows: [MetricRow<ProfileReport>; 6] = [
        ("Duration (ms)", |p| format!("{:.3}", p.duration_ms)),
        ("Compute SM (%)", |p| format!("{:.1}", p.compute_sm_pct)),
        ("Memory (%)", |p| format!("{:.1}", p.memory_pct)),
        ("Registers", |p| format!("{}", p.registers)),
        ("Load Global (LDG)", |p| format!("{:.0}", p.load_global)),
        ("Store Global (STG)", |p| format!("{:.0}", p.store_global)),
    ];
    for (name, extract) in rows {
        let mut row = vec![name.to_string()];
        for (_, mojo_prof, cuda_prof) in &profiles {
            row.push(extract(mojo_prof));
            row.push(extract(cuda_prof));
        }
        table.push_row(row);
    }
    report.push_line(table.render());
    report.push_table("ncu_metrics", csv);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_the_papers_columns_and_register_counts() {
        let report = run();
        let text = &report.text;
        for col in ["Copy Mojo", "Copy CUDA", "Dot Mojo", "Dot CUDA"] {
            assert!(text.contains(col), "missing column {col}");
        }
        // Registers row: streaming ops use 16; Dot uses 26 (Mojo) vs 20 (CUDA).
        let reg_line = text
            .lines()
            .find(|l| l.starts_with("Registers"))
            .expect("registers row");
        assert!(reg_line.contains("16"));
        assert!(reg_line.contains("26"));
        assert!(reg_line.contains("20"));
        // 4 ops × 2 backends rows of CSV.
        assert_eq!(report.tables[0].1.rows.len(), 8);
    }

    #[test]
    fn table3_durations_track_the_paper() {
        // Copy ≈ 0.20 ms for both backends; Dot shows the 0.215 vs 0.168 gap.
        let report = run();
        let duration_line = report
            .text
            .lines()
            .find(|l| l.starts_with("Duration"))
            .unwrap()
            .to_string();
        assert!(duration_line.contains("0.2"));
    }
}
