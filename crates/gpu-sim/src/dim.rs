//! Grid/block dimensions and validated launch configurations.
//!
//! Mirrors the CUDA/HIP `dim3` convention the paper's kernels use: a launch is
//! a 3-D grid of 3-D thread blocks. The seven-point stencil launches a 3-D
//! grid; BabelStream, miniBUDE and Hartree–Fock launch 1-D grids.

use crate::error::{SimError, SimResult};
use gpu_spec::GpuSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A three-component extent, used for both grids (in blocks) and blocks
/// (in threads). Components default to 1 as in CUDA's `dim3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    /// Extent along x (fastest-varying).
    pub x: u32,
    /// Extent along y.
    pub y: u32,
    /// Extent along z (slowest-varying).
    pub z: u32,
}

impl Dim3 {
    /// A 1-D extent `(x, 1, 1)`.
    pub const fn new_1d(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A 2-D extent `(x, y, 1)`.
    pub const fn new_2d(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// A full 3-D extent.
    pub const fn new(x: u32, y: u32, z: u32) -> Self {
        Dim3 { x, y, z }
    }

    /// Total number of elements covered by this extent.
    pub const fn total(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Converts a linear index (x fastest) into `(x, y, z)` coordinates.
    pub fn delinearize(&self, linear: u64) -> (u32, u32, u32) {
        let x = (linear % self.x as u64) as u32;
        let y = ((linear / self.x as u64) % self.y as u64) as u32;
        let z = (linear / (self.x as u64 * self.y as u64)) as u32;
        (x, y, z)
    }

    /// Converts `(x, y, z)` coordinates into a linear index (x fastest).
    pub fn linearize(&self, x: u32, y: u32, z: u32) -> u64 {
        x as u64 + self.x as u64 * (y as u64 + self.y as u64 * z as u64)
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::new_1d(x)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Self {
        Dim3::new_2d(x, y)
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Self {
        Dim3::new(x, y, z)
    }
}

/// A validated kernel launch configuration: grid extent (in blocks) and block
/// extent (in threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Grid dimensions, in blocks.
    pub grid: Dim3,
    /// Block dimensions, in threads.
    pub block: Dim3,
}

impl LaunchConfig {
    /// Builds a launch configuration without validating against a device.
    pub fn new(grid: impl Into<Dim3>, block: impl Into<Dim3>) -> Self {
        LaunchConfig {
            grid: grid.into(),
            block: block.into(),
        }
    }

    /// Builds a 1-D launch that covers at least `n` work items with blocks of
    /// `block_size` threads — the `ceildiv` idiom from the paper's Listing 1.
    pub fn cover_1d(n: u64, block_size: u32) -> Self {
        let blocks = n.div_ceil(block_size as u64);
        LaunchConfig::new(Dim3::new_1d(blocks as u32), Dim3::new_1d(block_size))
    }

    /// Number of threads per block.
    pub fn threads_per_block(&self) -> u64 {
        self.block.total()
    }

    /// Total number of blocks in the grid.
    pub fn num_blocks(&self) -> u64 {
        self.grid.total()
    }

    /// Total number of threads launched.
    pub fn total_threads(&self) -> u64 {
        self.num_blocks() * self.threads_per_block()
    }

    /// Validates the launch against a device's hardware limits.
    pub fn validate(&self, spec: &GpuSpec) -> SimResult<()> {
        let tpb = self.threads_per_block();
        if tpb == 0 || self.num_blocks() == 0 {
            return Err(SimError::InvalidLaunch(
                "grid and block extents must be non-zero".to_string(),
            ));
        }
        if tpb > u64::from(spec.topology.max_threads_per_block) {
            return Err(SimError::InvalidLaunch(format!(
                "{} threads per block exceeds the device limit of {}",
                tpb, spec.topology.max_threads_per_block
            )));
        }
        if self.block.x > 1024 || self.block.y > 1024 || self.block.z > 64 {
            return Err(SimError::InvalidLaunch(format!(
                "block extent {} exceeds per-dimension limits (1024, 1024, 64)",
                self.block
            )));
        }
        Ok(())
    }
}

impl fmt::Display for LaunchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grid {} x block {}", self.grid, self.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_spec::presets;

    #[test]
    fn dim3_total_and_roundtrip() {
        let d = Dim3::new(4, 3, 2);
        assert_eq!(d.total(), 24);
        for linear in 0..d.total() {
            let (x, y, z) = d.delinearize(linear);
            assert_eq!(d.linearize(x, y, z), linear);
        }
    }

    #[test]
    fn dim3_constructors() {
        assert_eq!(Dim3::new_1d(7), Dim3 { x: 7, y: 1, z: 1 });
        assert_eq!(Dim3::new_2d(7, 5), Dim3 { x: 7, y: 5, z: 1 });
        assert_eq!(Dim3::from(9u32).total(), 9);
        assert_eq!(Dim3::from((2u32, 3u32)).total(), 6);
        assert_eq!(Dim3::from((2u32, 3u32, 4u32)).total(), 24);
    }

    #[test]
    fn cover_1d_rounds_up() {
        let cfg = LaunchConfig::cover_1d(1000, 256);
        assert_eq!(cfg.num_blocks(), 4);
        assert_eq!(cfg.threads_per_block(), 256);
        assert!(cfg.total_threads() >= 1000);

        let exact = LaunchConfig::cover_1d(1024, 256);
        assert_eq!(exact.num_blocks(), 4);
    }

    #[test]
    fn validate_accepts_paper_configs() {
        let h100 = presets::h100_nvl();
        // Stencil: L=512 grid (512,1,1) blocks, block (512,1,1) threads... the
        // paper's configurations are (1024,1,1) or (512,1,1) thread blocks.
        let cfg = LaunchConfig::new((512u32, 512u32, 1u32), 512u32);
        cfg.validate(&h100).unwrap();
        let cfg = LaunchConfig::new(32768u32, 1024u32);
        cfg.validate(&h100).unwrap();
    }

    #[test]
    fn validate_rejects_oversized_blocks() {
        let h100 = presets::h100_nvl();
        let cfg = LaunchConfig::new(1u32, 2048u32);
        assert!(cfg.validate(&h100).is_err());
        let cfg = LaunchConfig::new(1u32, (1u32, 1u32, 128u32));
        assert!(cfg.validate(&h100).is_err());
        let cfg = LaunchConfig::new(0u32, 128u32);
        assert!(cfg.validate(&h100).is_err());
    }

    #[test]
    fn display_formats() {
        let cfg = LaunchConfig::new(4u32, 128u32);
        let s = cfg.to_string();
        assert!(s.contains("grid (4, 1, 1)"));
        assert!(s.contains("block (128, 1, 1)"));
    }
}
