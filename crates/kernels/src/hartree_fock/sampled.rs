//! Sharded, sampled functional validation for large Hartree–Fock systems.
//!
//! Full functional validation enumerates every quartet, which caps out at
//! [`super::MAX_FUNCTIONAL_NATOMS`] atoms — the 1024-atom paper case implies
//! ~1.4 × 10¹¹ quartets and is host-infeasible. This module makes the large
//! systems checkable anyway:
//!
//! 1. the quartet index space is split into `shards` contiguous shards;
//! 2. each shard is probed at a fixed stride (stratified sampling — purely
//!    arithmetic, no RNG, so the sample set is identical on every run and at
//!    every thread count);
//! 3. the surviving sampled quartets are executed through the portable
//!    kernel on the simulated device — per-quartet ERIs plus the six atomic
//!    Fock updates of Listing 5 — and compared against the CPU reference for
//!    exactly those quartets;
//! 4. the per-shard survivor fractions extrapolate to a whole-space survivor
//!    estimate that is cross-checked against the exact
//!    [`super::surviving_quartets`] two-pointer count.
//!
//! The work scales with the *sample* count, not the quartet count, so a
//! 1024-atom functional validation finishes in seconds on the host.

use super::config::HartreeFockConfig;
use super::cost::surviving_quartets;
use super::geometry::HeliumSystem;
use super::reference::{quartet_eri, scatter_fock};
use super::triangular::pair_decode;
use crate::cache;
use crate::common::compare_slices;
use gpu_sim::{PooledVec, SimError};
use portable_kernel::prelude::*;
use rayon::prelude::*;
use vendor_models::{heuristics, Platform};

/// Default number of sampled probes across the whole quartet space.
pub const DEFAULT_SAMPLES: u64 = 4096;

/// Default number of shards the quartet space is split into.
pub const DEFAULT_SHARDS: u64 = 32;

/// How the sampled probe budget is spread over the shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SampleWeighting {
    /// Every shard receives the same probe budget (the historical behaviour
    /// and the default — report goldens are produced with this weighting).
    #[default]
    Uniform,
    /// Importance sampling: each shard's probe budget is proportional to its
    /// coarse Schwarz mass (the mean sampled `schwarz[ij] * schwarz[kl]`
    /// product times the shard width), so probes concentrate where surviving
    /// quartets actually live. The mass pre-pass is a fixed-stride sweep —
    /// purely arithmetic, no RNG — so the weighted plan is as deterministic
    /// as the uniform one.
    Schwarz,
}

impl SampleWeighting {
    /// Stable lowercase label (used in cache keys and diagnostics).
    pub fn label(self) -> &'static str {
        match self {
            SampleWeighting::Uniform => "uniform",
            SampleWeighting::Schwarz => "schwarz",
        }
    }
}

/// Sampling statistics of one shard of the quartet index space.
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard ordinal.
    pub shard: u64,
    /// First quartet index of the shard (inclusive).
    pub start: u64,
    /// One past the last quartet index of the shard.
    pub end: u64,
    /// Probes taken in this shard.
    pub probed: u64,
    /// Probes that survived Schwarz screening.
    pub surviving: u64,
    /// Maximum absolute device-vs-reference ERI error over this shard's
    /// surviving samples.
    pub max_abs_error: f64,
}

impl ShardStats {
    /// Estimated survivor count for the whole shard, extrapolated from the
    /// sampled survivor fraction.
    pub fn estimated_survivors(&self) -> u64 {
        if self.probed == 0 {
            return 0;
        }
        let fraction = self.surviving as f64 / self.probed as f64;
        (fraction * (self.end - self.start) as f64).round() as u64
    }
}

/// The outcome of one sharded, sampled functional validation.
#[derive(Debug, Clone)]
pub struct SampledValidation {
    /// Atom count of the validated system.
    pub natoms: u32,
    /// Gaussian primitives per atom.
    pub ngauss: u32,
    /// Total quartet count of the system.
    pub nquartets: u64,
    /// Per-shard sampling statistics.
    pub shards: PooledVec<ShardStats>,
    /// Probes taken across all shards.
    pub probed: u64,
    /// Sampled quartets that survived screening (and were executed).
    pub executed: u64,
    /// Survivor estimate for the whole quartet space, extrapolated from the
    /// per-shard sampled fractions.
    pub estimated_survivors: u64,
    /// Exact survivor count from the two-pointer sweep.
    pub exact_survivors: u64,
    /// Maximum absolute device-vs-reference error over the sampled Fock
    /// contributions (the atomic-scatter path).
    pub fock_max_abs_error: f64,
    /// Maximum absolute device-vs-reference ERI error over all samples.
    pub eri_max_abs_error: f64,
}

impl SampledValidation {
    /// Relative error of the sampled survivor estimate vs the exact count.
    pub fn survivor_estimate_error(&self) -> f64 {
        if self.exact_survivors == 0 {
            return self.estimated_survivors as f64;
        }
        (self.estimated_survivors as f64 - self.exact_survivors as f64).abs()
            / self.exact_survivors as f64
    }
}

/// Splits `0..nquartets` into `shards` contiguous, near-equal ranges (the
/// first `nquartets % shards` shards are one element longer).
pub fn shard_ranges(nquartets: u64, shards: u64) -> Vec<(u64, u64)> {
    let shards = shards.clamp(1, nquartets.max(1));
    let base = nquartets / shards;
    let extra = nquartets % shards;
    let mut ranges = Vec::with_capacity(shards as usize);
    let mut start = 0;
    for s in 0..shards {
        let len = base + u64::from(s < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

/// The run-invariant part of one sampled validation: the stratified probe
/// set, its surviving quartets, the CPU-reference ERIs for those quartets,
/// and the Fock contributions they are expected to produce. Sampling is
/// purely arithmetic (no RNG), so the plan is a function of the system,
/// tolerance and probe counts alone — [`cache::sampled_plan`] generates it
/// once and every repeated run replays it without touching the allocator.
#[derive(Debug)]
pub struct SampledPlan {
    /// Per-shard statistics template, `max_abs_error` zeroed.
    pub shards: Vec<ShardStats>,
    /// Surviving `(shard, quartet)` probes in index order.
    pub survivors: Vec<(u64, u64)>,
    /// CPU-reference ERI of each surviving probe.
    pub host_eris: Vec<f64>,
    /// Expected Fock contributions of the surviving probes (flattened
    /// `natoms × natoms`).
    pub expected_fock: Vec<f64>,
}

impl SampledPlan {
    /// Generates the plan: stratified sampling, reference ERIs through the
    /// deterministic lane, and a serial scatter of the expected Fock
    /// contributions.
    pub(crate) fn generate(
        system: &HeliumSystem,
        screening_tol: f64,
        nquartets: u64,
        samples: u64,
        shards: u64,
        weighting: SampleWeighting,
    ) -> SampledPlan {
        let (stats, survivors) =
            sample_quartets(system, screening_tol, nquartets, samples, shards, weighting);
        let nsamples = survivors.len();
        let host_eris: Vec<f64> = {
            let survivors = &survivors;
            (0..nsamples)
                .into_par_iter()
                .map(move |i| {
                    let (ij, kl) = pair_decode(survivors[i].1);
                    quartet_eri(system, ij, kl)
                })
                .collect()
        };
        let natoms = system.natoms;
        let mut expected_fock = vec![0.0f64; natoms * natoms];
        for (&(_, q), &eri) in survivors.iter().zip(host_eris.iter()) {
            let (ij, kl) = pair_decode(q);
            scatter_fock(natoms, &system.dens, eri, ij, kl, |index, value| {
                expected_fock[index] += value;
            });
        }
        SampledPlan {
            shards: stats,
            survivors,
            host_eris,
            expected_fock,
        }
    }
}

/// Probes the coarse Schwarz mass pre-pass takes per shard. Fixed (and
/// independent of the requested sample budget) so the weighted plan is a
/// deterministic function of the system and shard geometry alone.
const COARSE_MASS_PROBES: u64 = 32;

/// Per-shard probe budgets under a weighting scheme.
///
/// `Uniform` reproduces the historical allocation exactly (`samples`
/// divided evenly, rounded up). `Schwarz` apportions the total budget by
/// each shard's coarse Schwarz mass through largest-remainder rounding,
/// flooring every non-empty shard at one probe so the stratified estimate
/// never loses a stratum.
fn shard_probe_budgets(
    system: &HeliumSystem,
    ranges: &[(u64, u64)],
    samples: u64,
    weighting: SampleWeighting,
) -> Vec<u64> {
    match weighting {
        SampleWeighting::Uniform => {
            let per_shard = samples.div_ceil(ranges.len() as u64).max(1);
            ranges.iter().map(|&(s, e)| per_shard.min(e - s)).collect()
        }
        SampleWeighting::Schwarz => {
            // Coarse mass pre-pass: mean sampled Schwarz product × width.
            let masses: Vec<f64> = ranges
                .iter()
                .map(|&(start, end)| {
                    let len = end - start;
                    if len == 0 {
                        return 0.0;
                    }
                    let probes = COARSE_MASS_PROBES.min(len);
                    let stride = (len / probes).max(1);
                    let mut sum = 0.0f64;
                    for k in 0..probes {
                        let (ij, kl) = pair_decode(start + k * stride);
                        sum += system.schwarz[ij as usize] * system.schwarz[kl as usize];
                    }
                    sum / probes as f64 * len as f64
                })
                .collect();
            let total_mass: f64 = masses.iter().sum();
            if total_mass <= 0.0 {
                // Degenerate mass field: fall back to the uniform split.
                return shard_probe_budgets(system, ranges, samples, SampleWeighting::Uniform);
            }
            // Largest-remainder apportionment of the total budget; ties are
            // broken by shard index, so the result is deterministic.
            let shares: Vec<f64> = masses
                .iter()
                .map(|m| samples as f64 * m / total_mass)
                .collect();
            let mut budgets: Vec<u64> = shares.iter().map(|s| s.floor() as u64).collect();
            let assigned: u64 = budgets.iter().sum();
            let mut order: Vec<usize> = (0..budgets.len()).collect();
            order.sort_by(|&a, &b| {
                let ra = shares[a] - shares[a].floor();
                let rb = shares[b] - shares[b].floor();
                rb.partial_cmp(&ra).unwrap().then(a.cmp(&b))
            });
            for &shard in order
                .iter()
                .cycle()
                .take(samples.saturating_sub(assigned) as usize)
            {
                budgets[shard] += 1;
            }
            // Floor every non-empty shard at one probe and clamp to width.
            for (budget, &(start, end)) in budgets.iter_mut().zip(ranges.iter()) {
                let len = end - start;
                *budget = (*budget).max(u64::from(len > 0)).min(len);
            }
            budgets
        }
    }
}

/// Stratified sample of the quartet space: probes each shard at a fixed
/// stride and partitions the probes by Schwarz screening. Returns the
/// per-shard statistics (errors zeroed) and the surviving `(shard, quartet)`
/// list in index order.
fn sample_quartets(
    system: &HeliumSystem,
    screening_tol: f64,
    nquartets: u64,
    samples: u64,
    shards: u64,
    weighting: SampleWeighting,
) -> (Vec<ShardStats>, Vec<(u64, u64)>) {
    let ranges = shard_ranges(nquartets, shards);
    let budgets = shard_probe_budgets(system, &ranges, samples, weighting);
    let mut stats = Vec::with_capacity(ranges.len());
    let mut survivors = Vec::new();
    for (shard, &(start, end)) in ranges.iter().enumerate() {
        let len = end - start;
        let probes = budgets[shard];
        // probes == 0 only for an empty shard, where the loop body never runs.
        let stride = len.checked_div(probes).map_or(1, |s| s.max(1));
        let mut surviving = 0;
        for k in 0..probes {
            let q = start + k * stride;
            let (ij, kl) = pair_decode(q);
            if system.schwarz[ij as usize] * system.schwarz[kl as usize] > screening_tol {
                surviving += 1;
                survivors.push((shard as u64, q));
            }
        }
        stats.push(ShardStats {
            shard: shard as u64,
            start,
            end,
            probed: probes,
            surviving,
            max_abs_error: 0.0,
        });
    }
    (stats, survivors)
}

/// Runs the sharded, sampled functional validation of the portable
/// Hartree–Fock kernel on `platform`.
///
/// `samples` probes are spread over `shards` shards of the quartet space;
/// the surviving quartets are executed on the simulated device (ERIs plus
/// atomic Fock scatter) and checked against the CPU reference restricted to
/// the same quartets. Works at any `natoms`, including sizes far beyond the
/// full-validation limit.
pub fn run_sampled(
    platform: &Platform,
    config: &HartreeFockConfig,
    samples: u64,
    shards: u64,
) -> Result<SampledValidation, SimError> {
    run_sampled_weighted(platform, config, samples, shards, SampleWeighting::Uniform)
}

/// [`run_sampled`] with an explicit probe-budget weighting. `Uniform` is the
/// historical (and golden) behaviour; `Schwarz` importance-samples the shards
/// by their coarse Schwarz mass, which concentrates probes on the shards that
/// contribute survivors and tightens the extrapolated survivor estimate.
pub fn run_sampled_weighted(
    platform: &Platform,
    config: &HartreeFockConfig,
    samples: u64,
    shards: u64,
    weighting: SampleWeighting,
) -> Result<SampledValidation, SimError> {
    let system = cache::helium_system(config);
    let natoms = system.natoms;
    let nquartets = config.nquartets();

    // The probe set, reference ERIs and expected Fock contributions are
    // run-invariant — fetch the cached plan and copy the mutable shard
    // statistics into pooled storage.
    let plan = cache::sampled_plan(config, samples, shards, weighting);
    let mut stats: PooledVec<ShardStats> = PooledVec::new();
    stats.extend_from_slice(&plan.shards);
    let nsamples = plan.survivors.len();

    // Device execution: one thread per surviving sample, writing its ERI and
    // scattering the six atomic Fock updates of Listing 5.
    let ctx = DeviceContext::from_device(cache::device(platform));
    let dens = LayoutTensor::new(
        ctx.enqueue_create_buffer_from(&system.dens)?,
        Layout::row_major_2d(natoms, natoms),
    )?;
    let fock = LayoutTensor::new(
        ctx.enqueue_create_buffer::<f64>(natoms * natoms)?,
        Layout::row_major_2d(natoms, natoms),
    )?;
    let eris = LayoutTensor::new(
        ctx.enqueue_create_buffer::<f64>(nsamples.max(1))?,
        Layout::row_major_1d(nsamples.max(1)),
    )?;
    if nsamples > 0 {
        let launch = heuristics::hartree_fock_launch(nsamples as u64);
        let (fock_k, dens_k, eris_k) = (fock.clone(), dens.clone(), eris.clone());
        let system_k = &system;
        let survivors_k = &plan.survivors;
        ctx.enqueue_function(launch, move |t| {
            let sample = t.global_x() as usize;
            if sample >= nsamples {
                return;
            }
            let (ij, kl) = pair_decode(survivors_k[sample].1);
            let eri = quartet_eri(system_k, ij, kl);
            eris_k.set(sample, eri);
            let (i, j) = pair_decode(ij);
            let (k, l) = pair_decode(kl);
            let (i, j, k, l) = (i as usize, j as usize, k as usize, l as usize);
            Atomic::fetch_add_f64(&fock_k, i * natoms + j, dens_k.get2(k, l) * eri * 4.0);
            Atomic::fetch_add_f64(&fock_k, k * natoms + l, dens_k.get2(i, j) * eri * 4.0);
            Atomic::fetch_add_f64(&fock_k, i * natoms + k, dens_k.get2(j, l) * -eri);
            Atomic::fetch_add_f64(&fock_k, i * natoms + l, dens_k.get2(j, k) * -eri);
            Atomic::fetch_add_f64(&fock_k, j * natoms + k, dens_k.get2(i, l) * -eri);
            Atomic::fetch_add_f64(&fock_k, j * natoms + l, dens_k.get2(i, k) * -eri);
        })?;
        ctx.synchronize();
    }

    // Compare: per-sample ERIs (exact arithmetic path) and the aggregated
    // Fock contributions (the atomic-scatter path, tolerance for reassociation).
    let mut device_eris: PooledVec<f64> = PooledVec::new();
    eris.to_host_into(&mut device_eris);
    let mut eri_max_abs_error = 0.0f64;
    for (sample, &(shard, _)) in plan.survivors.iter().enumerate() {
        let err = (device_eris[sample] - plan.host_eris[sample]).abs();
        eri_max_abs_error = eri_max_abs_error.max(err);
        let stat = &mut stats[shard as usize];
        stat.max_abs_error = stat.max_abs_error.max(err);
    }
    let mut device_fock: PooledVec<f64> = PooledVec::new();
    fock.to_host_into(&mut device_fock);
    let fock_max_abs_error =
        compare_slices(&device_fock, &plan.expected_fock, 1e-9).map_err(|msg| {
            SimError::InvalidParameter(format!("sampled Hartree-Fock validation failed: {msg}"))
        })?;

    let probed = stats.iter().map(|s| s.probed).sum();
    let estimated_survivors = stats.iter().map(|s| s.estimated_survivors()).sum();
    Ok(SampledValidation {
        natoms: config.natoms,
        ngauss: config.ngauss,
        nquartets,
        shards: stats,
        probed,
        executed: nsamples as u64,
        estimated_survivors,
        exact_survivors: surviving_quartets(&system.schwarz, config.screening_tol),
        fock_max_abs_error,
        eri_max_abs_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_the_space_without_overlap() {
        for (n, shards) in [(100u64, 7u64), (5, 8), (0, 4), (1_000_000, 32)] {
            let ranges = shard_ranges(n, shards);
            let mut cursor = 0;
            for &(start, end) in &ranges {
                assert_eq!(start, cursor);
                assert!(end >= start);
                cursor = end;
            }
            assert_eq!(cursor, n);
        }
    }

    #[test]
    fn sampled_validation_passes_on_a_midsize_system() {
        let config = HartreeFockConfig::paper(64, 3);
        let report = run_sampled(&Platform::portable_h100(), &config, 512, 8).unwrap();
        assert_eq!(report.shards.len(), 8);
        assert!(report.executed > 0);
        assert_eq!(report.eri_max_abs_error, 0.0, "shared ERI arithmetic");
        assert!(report.fock_max_abs_error < 1e-9);
        // The stratified estimate should land near the exact survivor count.
        assert!(
            report.survivor_estimate_error() < 0.35,
            "estimate {} vs exact {}",
            report.estimated_survivors,
            report.exact_survivors
        );
    }

    #[test]
    fn sampling_is_deterministic_across_runs() {
        let config = HartreeFockConfig::paper(64, 3);
        let a = run_sampled(&Platform::portable_h100(), &config, 256, 4).unwrap();
        let b = run_sampled(&Platform::portable_h100(), &config, 256, 4).unwrap();
        assert_eq!(a.executed, b.executed);
        assert_eq!(a.estimated_survivors, b.estimated_survivors);
        for (sa, sb) in a.shards.iter().zip(b.shards.iter()) {
            assert_eq!(sa.surviving, sb.surviving);
            assert_eq!(sa.probed, sb.probed);
        }
    }

    #[test]
    fn schwarz_weighting_reallocates_probes_toward_heavy_shards() {
        let config = HartreeFockConfig::paper(64, 3);
        let system = cache::helium_system(&config);
        let ranges = shard_ranges(config.nquartets(), 16);
        let uniform = shard_probe_budgets(&system, &ranges, 512, SampleWeighting::Uniform);
        let weighted = shard_probe_budgets(&system, &ranges, 512, SampleWeighting::Schwarz);
        assert_eq!(uniform.len(), weighted.len());
        // Importance sampling must actually move budget between shards...
        assert_ne!(uniform, weighted);
        // ...while covering every stratum and respecting the total budget
        // (up to the per-shard floor).
        assert!(weighted.iter().all(|&b| b >= 1));
        let total: u64 = weighted.iter().sum();
        assert!(total >= 512, "floors can only add probes, got {total}");
        assert!(total <= 512 + ranges.len() as u64);
    }

    #[test]
    fn weighted_sampling_is_deterministic_and_passes_validation() {
        let config = HartreeFockConfig::paper(64, 3);
        let platform = Platform::portable_h100();
        let a = run_sampled_weighted(&platform, &config, 512, 8, SampleWeighting::Schwarz).unwrap();
        let b = run_sampled_weighted(&platform, &config, 512, 8, SampleWeighting::Schwarz).unwrap();
        assert_eq!(a.executed, b.executed);
        assert_eq!(a.estimated_survivors, b.estimated_survivors);
        assert!(a.executed > 0);
        assert_eq!(a.eri_max_abs_error, 0.0);
        assert!(a.fock_max_abs_error < 1e-9);
        assert!(
            a.survivor_estimate_error() < 0.35,
            "estimate {} vs exact {}",
            a.estimated_survivors,
            a.exact_survivors
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(8))]

        /// The Schwarz-weighted estimator must stay within the same
        /// extrapolation tolerance the uniform estimator is held to.
        fn weighted_estimator_stays_within_extrapolation_tolerance(
            natoms in 16u32..48,
            samples in 128u64..512,
            shards in 2u64..12,
        ) {
            let config = HartreeFockConfig::paper(natoms, 3);
            let report = run_sampled_weighted(
                &Platform::portable_h100(),
                &config,
                samples,
                shards,
                SampleWeighting::Schwarz,
            )
            .unwrap();
            proptest::prop_assert!(
                report.survivor_estimate_error() < 0.35,
                "natoms={} samples={} shards={}: estimate {} vs exact {}",
                natoms,
                samples,
                shards,
                report.estimated_survivors,
                report.exact_survivors
            );
        }
    }

    #[test]
    fn screening_everything_executes_nothing() {
        let mut config = HartreeFockConfig::validation(16);
        config.screening_tol = 1e12;
        let report = run_sampled(&Platform::portable_h100(), &config, 64, 4).unwrap();
        assert_eq!(report.executed, 0);
        assert_eq!(report.estimated_survivors, 0);
        assert_eq!(report.exact_survivors, 0);
        assert_eq!(report.fock_max_abs_error, 0.0);
    }
}
